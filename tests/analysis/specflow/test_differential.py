"""Static-vs-dynamic differential harness tests.

The full-matrix sweep lives in ``tests/attacks/test_matrix.py``; here we
test the harness itself — pins, the soundness inclusion, and report
plumbing — on deliberately small cuts.
"""

import dataclasses

from repro.analysis.specflow.differential import (
    KIND_STATIC_MISMATCH,
    KIND_UNSOUND,
    check_entry,
    check_fuzz_seed,
    dynamic_verdict,
    run_differential,
)
from repro.analysis.specflow.model import VERDICT_SAFE
from repro.attacks.corpus import (
    DYNAMIC_CLEAN,
    DYNAMIC_LEAK,
    corpus_entry,
)


class TestDynamicVerdict:
    def test_spectre_leaks_on_unsafe_and_not_on_dom_ap(self):
        entry = corpus_entry("spectre_v1")
        assert dynamic_verdict(entry.build, "unsafe", entry.secrets) == DYNAMIC_LEAK
        assert dynamic_verdict(entry.build, "dom+ap", entry.secrets) == DYNAMIC_CLEAN


class TestCheckEntry:
    def test_pinned_corpus_cell_is_clean(self):
        entry = corpus_entry("spectre_v1")
        report, unknown, problems = check_entry(entry, ["unsafe", "nda"])
        assert problems == []
        assert unknown == 0
        assert report.program_name == "spectre_v1"

    def test_static_only_skips_the_simulator(self):
        entry = corpus_entry("spectre_v1")
        _, _, problems = check_entry(entry, ["unsafe", "dom+ap"], static_only=True)
        assert problems == []

    def test_drifted_static_pin_is_reported(self):
        entry = corpus_entry("spectre_v1")
        bad = dataclasses.replace(
            entry, expected_static={**entry.expected_static, "unsafe": VERDICT_SAFE}
        )
        _, _, problems = check_entry(bad, ["unsafe"], static_only=True)
        assert [p.kind for p in problems] == [KIND_STATIC_MISMATCH]
        assert problems[0].scheme == "unsafe"


class TestCheckFuzzSeed:
    def test_benign_template_is_sound_on_a_defended_scheme(self):
        # Seed 0 is the benign template: static safe, dynamics clean.
        report, unknown, problems = check_fuzz_seed(0, ["unsafe", "dom+ap"])
        assert problems == []
        assert report.program_name.startswith("secretgen_benign")

    def test_static_leak_cells_skip_the_dynamic_run(self):
        # Seed 1 is arch_transmit: static leak-possible everywhere, so
        # the harness has nothing to refute dynamically.
        report, unknown, problems = check_fuzz_seed(1, ["unsafe"])
        assert problems == []
        assert report.arch_channel is not None


class TestRunDifferential:
    def test_static_only_corpus_sweep_is_clean(self):
        report = run_differential(fuzz_seeds=0, static_only=True)
        assert report.ok
        assert report.corpus_cells > 0
        assert report.fuzz_cells == 0

    def test_gadget_and_scheme_restriction(self):
        report = run_differential(
            fuzz_seeds=0,
            schemes=["unsafe", "dom+ap"],
            gadgets=["spectre_v1"],
        )
        assert report.ok
        assert report.corpus_cells == 2
        assert len(report.static_reports) == 1

    def test_report_serializes(self):
        import json

        report = run_differential(fuzz_seeds=0, static_only=True)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["disagreements"] == []

    def test_unsound_kind_is_the_fatal_marker(self):
        # Sanity-check the constant the CI artifact consumers grep for.
        assert KIND_UNSOUND == "static-safe-dynamic-leak"
