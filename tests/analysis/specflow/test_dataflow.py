"""Abstract-interpretation engine unit tests."""

import pytest

from repro.analysis.specflow.dataflow import (
    AbsState,
    DEFAULT_BUDGET,
    initial_image,
    join,
    merge_taint,
    operand_taint,
    rekey,
    run_dataflow,
    transfer,
)
from repro.common.errors import SpecflowBudgetError
from repro.isa.builder import CodeBuilder

SECRET = 0x1000


def no_source(pc, addr):
    return None


def secret_source(pc, addr):
    if addr == SECRET:
        return "arch"
    return None


def final_state(program, source_fn=no_source):
    """IN-states after a full fixpoint from pc 0."""
    in_states, _ = run_dataflow(program, {0: AbsState.entry(program)}, source_fn)
    return in_states


class TestTransfer:
    def test_constants_propagate_through_alu(self):
        b = CodeBuilder()
        b.li(1, 6)
        b.muli(2, 1, 7)
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program)
        value, taint = in_states[2].read_reg(2)
        assert value == 42 and taint == {}

    def test_alu_result_is_masked_like_the_interpreter(self):
        b = CodeBuilder()
        b.li(1, (1 << 63) + 5)
        b.shli(2, 1, 1)          # overflows 64 bits
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program)
        value, _ = in_states[2].read_reg(2)
        assert value == 10  # (2**63+5) * 2 mod 2**64

    def test_const_load_reads_initial_image(self):
        b = CodeBuilder()
        b.set_memory(0x2000, 77)
        b.li(1, 0x2000)
        b.load(2, 1)
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program)
        value, taint = in_states[2].read_reg(2)
        assert value == 77 and taint == {}

    def test_secret_load_taints_and_forgets_value(self):
        b = CodeBuilder()
        b.set_memory(SECRET, 9)
        b.li(1, SECRET)
        b.load(2, 1)
        b.addi(3, 2, 1)
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program, secret_source)
        value, taint = in_states[2].read_reg(2)
        assert value is None  # a tainted value carries no usable constant
        assert set(taint) == {("arch", 1)}
        # Taint flows through the ALU with the path extended.
        _, derived = in_states[3].read_reg(3)
        assert ("arch", 1) in derived
        assert derived[("arch", 1)] == (1, 2)

    def test_const_store_is_a_strong_update(self):
        b = CodeBuilder()
        b.set_memory(0x2000, 1)
        b.li(1, 0x2000)
        b.li(2, 5)
        b.store(2, 1)
        b.load(3, 1)
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program)
        value, taint = in_states[4].read_reg(3)
        assert value == 5 and taint == {}

    def test_unknown_store_clobbers_memory(self):
        b = CodeBuilder()
        b.set_memory(SECRET, 9)
        b.set_memory(0x2000, 7)
        b.li(1, SECRET)
        b.load(2, 1)          # tainted, value unknown (None)
        b.store(2, 2)         # tainted data at a secret-derived address
        b.li(4, 0x2000)
        b.load(5, 4)          # may read the clobbered heap
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program, secret_source)
        state = in_states[5]
        assert state.clobbered
        value, taint = state.read_reg(5)
        assert value is None
        # The stored *data* taint is reachable through any later load.
        assert ("arch", 1) in taint


class TestJoinAndTaint:
    def test_join_keeps_agreeing_values_drops_conflicts(self):
        b = CodeBuilder()
        b.li(1, 3)
        b.halt()
        program = b.build(name="t")
        a = AbsState.entry(program)
        c = AbsState.entry(program)
        a.write_reg(1, 3, {})
        c.write_reg(1, 4, {})
        joined, changed = join(a, c)
        assert changed
        assert joined.read_reg(1) == (None, {})

    def test_join_unions_taint(self):
        b = CodeBuilder()
        b.halt()
        program = b.build(name="t")
        a = AbsState.entry(program)
        c = AbsState.entry(program)
        a.write_reg(1, None, {("arch", 1): (1,)})
        c.write_reg(1, None, {("spec", 2): (2,)})
        joined, _ = join(a, c)
        assert set(joined.read_reg(1)[1]) == {("arch", 1), ("spec", 2)}

    def test_merge_taint_prefers_first_path(self):
        merged = merge_taint({("arch", 1): (1,)}, {("arch", 1): (1, 2)})
        assert merged[("arch", 1)] == (1,)

    def test_rekey_changes_kind_only(self):
        rekeyed = rekey({("arch", 5): (5, 6)}, "pre")
        assert rekeyed == {("pre", 5): (5, 6)}

    def test_operand_taint_for_branch_reads_both_operands(self):
        b = CodeBuilder()
        b.set_memory(SECRET, 9)
        b.li(1, SECRET)
        b.load(2, 1)
        b.beq(2, 0, "out")
        b.label("out")
        b.halt()
        program = b.build(name="t")
        in_states = final_state(program, secret_source)
        taint = operand_taint(in_states[2], 2, program)
        assert ("arch", 1) in taint


class TestBudgetAndConvergence:
    def test_loop_converges(self):
        b = CodeBuilder()
        b.li(1, 0)
        b.li(2, 100)
        b.label("top")
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        program = b.build(name="t")
        in_states, spent = run_dataflow(
            program, {0: AbsState.entry(program)}, no_source
        )
        assert spent < DEFAULT_BUDGET
        # The loop counter cannot stay constant across iterations.
        assert in_states[4].read_reg(1)[0] is None

    def test_budget_exhaustion_raises(self):
        b = CodeBuilder()
        b.li(1, 0)
        b.li(2, 100)
        b.label("top")
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        program = b.build(name="t")
        with pytest.raises(SpecflowBudgetError):
            run_dataflow(program, {0: AbsState.entry(program)}, no_source, budget=3)


class TestInitialImage:
    def test_addresses_aligned_and_values_masked(self):
        b = CodeBuilder()
        b.set_memory(0x2004, -1)
        b.halt()
        program = b.build(name="t")
        image = initial_image(program)
        assert image == {0x2000: (1 << 64) - 1}
