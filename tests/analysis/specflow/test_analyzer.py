"""End-to-end static verdicts on hand-built programs and real gadgets."""

from repro.analysis.specflow import analyze_program
from repro.analysis.specflow.model import (
    VERDICT_LEAK,
    VERDICT_SAFE,
    VERDICT_UNKNOWN,
)
from repro.attacks.corpus import scheme_factory
from repro.attacks.gadgets import spectre_v1
from repro.isa.builder import CodeBuilder

SECRET = 0x1000
PROBE = 0x8000

ALL = None  # analyze_program's default: the standard scheme labels


def secretless_program():
    b = CodeBuilder()
    b.li(1, 3)
    b.addi(1, 1, 1)
    b.halt()
    return b.build(name="no_secrets")


def arch_channel_program():
    """Architecturally indexes probe memory with the secret."""
    b = CodeBuilder()
    b.set_memory(SECRET, 1)
    b.mark_secret(SECRET)
    b.li(1, SECRET)
    b.load(2, 1)
    b.shli(2, 2, 6)
    b.addi(2, 2, PROBE)
    b.load(3, 2)
    b.halt()
    return b.build(name="arch_channel")


def unreachable_secret_program():
    """A secret is declared but no instruction can read it."""
    b = CodeBuilder()
    b.set_memory(SECRET, 1)
    b.mark_secret(SECRET)
    b.set_memory(0x2000, 7)
    b.li(1, 0x2000)
    b.load(2, 1)
    b.beq(2, 0, "out")
    b.addi(2, 2, 1)
    b.label("out")
    b.halt()
    return b.build(name="benign")


class TestDegenerateCases:
    def test_no_secret_regions_is_vacuously_safe(self):
        report = analyze_program(secretless_program())
        assert all(v.verdict == VERDICT_SAFE for v in report.verdicts.values())
        assert "vacuously" in report.verdicts["unsafe"].reason

    def test_unreachable_secret_is_safe_everywhere(self):
        report = analyze_program(unreachable_secret_program())
        assert all(v.verdict == VERDICT_SAFE for v in report.verdicts.values())

    def test_budget_exhaustion_yields_unknown_not_safe(self):
        report = analyze_program(spectre_v1().program, budget=5)
        assert all(v.verdict == VERDICT_UNKNOWN for v in report.verdicts.values())
        assert report.unknown_reason


class TestArchitecturalChannel:
    def test_flagged_for_every_scheme(self):
        report = analyze_program(arch_channel_program())
        assert report.arch_channel is not None
        assert all(v.verdict == VERDICT_LEAK for v in report.verdicts.values())

    def test_finding_marks_the_channel_architectural(self):
        report = analyze_program(arch_channel_program(), schemes=["dom+ap"])
        leak = report.verdicts["dom+ap"].leaks[0]
        assert leak.window_pc == -1
        assert leak.transmitter_kind == "architectural"


class TestSpectreVerdicts:
    def test_unprotected_baseline_leaks(self):
        report = analyze_program(spectre_v1().program)
        assert report.verdict("unsafe") == VERDICT_LEAK
        assert report.verdict("unsafe+ap") == VERDICT_LEAK

    def test_defended_schemes_are_safe(self):
        report = analyze_program(spectre_v1().program)
        for label in ("nda", "stt", "dom", "dom+vp", "nda+ap", "stt+ap", "dom+ap"):
            assert report.verdict(label) == VERDICT_SAFE, label

    def test_insecure_dom_variants_leak_under_ap(self):
        report = analyze_program(spectre_v1().program)
        assert report.verdict("dom-insecure-branches+ap") == VERDICT_LEAK
        assert report.verdict("dom-insecure-reissue+ap") == VERDICT_LEAK

    def test_leak_path_names_window_and_source(self):
        report = analyze_program(spectre_v1().program, schemes=["unsafe"])
        leak = report.verdicts["unsafe"].leaks[0]
        assert leak.window_pc >= 0
        assert leak.facts
        rendered = "\n".join(leak.render())
        assert "speculation window" in rendered
        assert "source load" in rendered

    def test_scheme_instances_are_accepted(self):
        scheme = scheme_factory("dom+ap")
        report = analyze_program(spectre_v1().program, schemes=[scheme])
        assert report.verdict("dom+ap") == VERDICT_SAFE


class TestReportShape:
    def test_to_dict_round_trips_to_json_types(self):
        import json

        report = analyze_program(spectre_v1().program, schemes=["unsafe", "nda"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["program"] == "spectre_v1"
        assert payload["verdicts"]["unsafe"]["verdict"] == VERDICT_LEAK
        assert payload["verdicts"]["nda"]["verdict"] == VERDICT_SAFE

    def test_windows_and_transmitters_counted(self):
        report = analyze_program(spectre_v1().program, schemes=["unsafe"])
        assert report.windows > 0
        assert report.transmitters > 0
