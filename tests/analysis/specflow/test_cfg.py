"""CFG construction and speculation-window shape."""

from repro.analysis.specflow.cfg import reachable, speculation_windows, successors
from repro.isa.builder import CodeBuilder


def straight_line():
    b = CodeBuilder()
    b.li(1, 5)
    b.addi(1, 1, 1)
    b.halt()
    return b.build(name="straight")


def diamond():
    b = CodeBuilder()
    b.li(1, 1)            # 0
    b.beq(1, 0, "else")   # 1
    b.addi(2, 1, 1)       # 2 (then)
    b.jmp("join")         # 3
    b.label("else")
    b.addi(2, 1, 2)       # 4 (else)
    b.label("join")
    b.halt()              # 5
    return b.build(name="diamond")


def loop():
    b = CodeBuilder()
    b.li(1, 0)            # 0
    b.li(2, 4)            # 1
    b.label("top")
    b.addi(1, 1, 1)       # 2
    b.blt(1, 2, "top")    # 3
    b.halt()              # 4
    return b.build(name="loop")


class TestSuccessors:
    def test_straight_line(self):
        table = successors(straight_line())
        assert table == [(1,), (2,), ()]

    def test_branch_has_both_successors(self):
        table = successors(diamond())
        assert set(table[1]) == {2, 4}

    def test_jmp_has_single_successor(self):
        table = successors(diamond())
        assert table[3] == (5,)

    def test_halt_has_no_successors(self):
        table = successors(diamond())
        assert table[5] == ()


class TestReachable:
    def test_includes_starts(self):
        table = successors(diamond())
        assert 2 in reachable(table, 2)

    def test_crosses_joins(self):
        table = successors(diamond())
        assert reachable(table, 2) == frozenset({2, 3, 5})

    def test_out_of_range_start_is_empty(self):
        table = successors(straight_line())
        assert reachable(table, 99) == frozenset()


class TestSpeculationWindows:
    def test_one_window_per_conditional_branch(self):
        assert set(speculation_windows(diamond())) == {1}
        assert set(speculation_windows(straight_line())) == set()

    def test_window_unions_both_arms(self):
        window = speculation_windows(diamond())[1]
        # Then-arm, else-arm, and the join are all in the shadow.
        assert {2, 3, 4, 5} <= window

    def test_window_crosses_loop_back_edge(self):
        # The bottom-of-loop branch shadows the next iteration: its own
        # pc is reachable from its taken successor.
        window = speculation_windows(loop())[3]
        assert 3 in window and 2 in window
