"""Unit tests for the MicroOp record."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.uop import NO_FORWARD, UNTAINTED, MicroOp, UopState


def make(op=Opcode.ADD, **kwargs):
    defaults = dict(rd=1, rs1=2, rs2=3)
    if op in (Opcode.LOAD,):
        defaults = dict(rd=1, rs1=2)
    if op in (Opcode.STORE,):
        defaults = dict(rs2=1, rs1=2)
    if op in (Opcode.NOP, Opcode.HALT):
        defaults = {}
    defaults.update(kwargs)
    return MicroOp(7, 3, Instruction(op, **defaults), cycle=11)


class TestLifecyclePredicates:
    def test_initial_state(self):
        uop = make()
        assert uop.state == UopState.DISPATCHED
        assert uop.in_flight
        assert not uop.completed
        assert not uop.committed
        assert not uop.squashed

    def test_completed_states(self):
        uop = make()
        uop.state = UopState.COMPLETED
        assert uop.completed and uop.in_flight
        uop.state = UopState.COMMITTED
        assert uop.completed and uop.committed and not uop.in_flight

    def test_squashed_not_completed(self):
        uop = make()
        uop.state = UopState.SQUASHED
        assert uop.squashed
        assert not uop.completed

    def test_defaults(self):
        uop = make(Opcode.LOAD)
        assert uop.taint == UNTAINTED
        assert uop.forward_source_seq == NO_FORWARD
        assert uop.result is None
        assert not uop.dl_issued and not uop.vp_active
        assert uop.dispatch_cycle == 11


class TestClassification:
    def test_kind_passthrough(self):
        assert make(Opcode.LOAD).is_load
        assert make(Opcode.STORE).is_store
        assert make(Opcode.BEQ, rd=None, rs1=1, rs2=2, imm=0).is_branch

    def test_word_address(self):
        uop = make(Opcode.LOAD)
        uop.address = 0x1007
        assert uop.word_address == 0x1000


class TestDoppelgangerPredicates:
    def test_has_doppelganger(self):
        uop = make(Opcode.LOAD)
        assert not uop.has_doppelganger
        uop.dl_predicted_address = 0x2000
        assert uop.has_doppelganger
        uop.dl_cancelled = True
        assert not uop.has_doppelganger

    def test_slots_prevent_typos(self):
        uop = make()
        with pytest.raises(AttributeError):
            uop.dl_predicted_adress = 1  # intentional typo must fail
