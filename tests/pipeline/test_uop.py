"""Unit tests for the MicroOp record."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.uop import NO_FORWARD, UNTAINTED, MicroOp, UopState


def make(op=Opcode.ADD, **kwargs):
    defaults = dict(rd=1, rs1=2, rs2=3)
    if op in (Opcode.LOAD,):
        defaults = dict(rd=1, rs1=2)
    if op in (Opcode.STORE,):
        defaults = dict(rs2=1, rs1=2)
    if op in (Opcode.NOP, Opcode.HALT):
        defaults = {}
    defaults.update(kwargs)
    return MicroOp(7, 3, Instruction(op, **defaults), cycle=11)


class TestLifecyclePredicates:
    def test_initial_state(self):
        uop = make()
        assert uop.state == UopState.DISPATCHED
        assert uop.in_flight
        assert not uop.completed
        assert not uop.committed
        assert not uop.squashed

    def test_completed_states(self):
        uop = make()
        uop.state = UopState.COMPLETED
        assert uop.completed and uop.in_flight
        uop.state = UopState.COMMITTED
        assert uop.completed and uop.committed and not uop.in_flight

    def test_squashed_not_completed(self):
        uop = make()
        uop.state = UopState.SQUASHED
        assert uop.squashed
        assert not uop.completed

    def test_defaults(self):
        uop = make(Opcode.LOAD)
        assert uop.taint == UNTAINTED
        assert uop.forward_source_seq == NO_FORWARD
        assert uop.result is None
        assert not uop.dl_issued and not uop.vp_active
        assert uop.dispatch_cycle == 11


class TestClassification:
    def test_kind_passthrough(self):
        assert make(Opcode.LOAD).is_load
        assert make(Opcode.STORE).is_store
        assert make(Opcode.BEQ, rd=None, rs1=1, rs2=2, imm=0).is_branch

    def test_word_address(self):
        uop = make(Opcode.LOAD)
        uop.address = 0x1007
        assert uop.word_address == 0x1000


class TestDoppelgangerPredicates:
    def test_has_doppelganger(self):
        uop = make(Opcode.LOAD)
        assert not uop.has_doppelganger
        uop.dl_predicted_address = 0x2000
        assert uop.has_doppelganger
        uop.dl_cancelled = True
        assert not uop.has_doppelganger

    def test_hybrid_layout_contract(self):
        """Hot fields are slotted; cold fields are lazy class defaults.

        The hybrid layout (see the module docstring of ``uop``) keeps the
        every-uop hot set in ``__slots__`` for access speed, and stores
        kind-specific fields as immutable class-level defaults that an
        instance only materializes in its ``__dict__`` on first write.
        """
        uop = make(Opcode.LOAD)
        # Hot fields live in slots, not the instance dict.
        for hot in ("seq", "state", "taint", "address", "wait_count"):
            assert hot in MicroOp.__slots__
            assert hot not in uop.__dict__
        # Cold fields read through to the class default without
        # allocating per-instance storage...
        assert uop.dl_issued is False
        assert "dl_issued" not in uop.__dict__
        # ...and a write materializes only the written field.
        uop.dl_issued = True
        assert uop.__dict__ == {"dl_issued": True}
        assert MicroOp.dl_issued is False  # class default untouched

    def test_lazy_defaults_are_immutable(self):
        """Shared class-level defaults must be immutable (ints, bools,
        None) — a mutable default would alias state across every uop."""
        slotted = set(MicroOp.__slots__)
        for name, value in vars(MicroOp).items():
            if name.startswith("_") or callable(value) or name in slotted:
                continue
            if isinstance(value, property):
                continue
            assert isinstance(value, (int, bool, type(None))), (
                f"class default {name!r} is mutable: {value!r}"
            )
