"""The idle-cycle fast-forward must be an optimization, never a semantic.

``Core.step`` jumps the clock to the next timed event when provably
nothing can happen.  These tests pin the conditions: jumps only occur
while stalled, never lose events, and leave committed state identical to
what a stall-free (always-busy) run produces.
"""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme


def dram_stall_program(hops=6):
    b = CodeBuilder()
    chain = [0x100000 + 8192 * i for i in range(hops + 1)]
    for here, there in zip(chain, chain[1:]):
        b.set_memory(here, there)
    b.li(1, chain[0])
    for _ in range(hops):
        b.load(1, 1)
    b.store(1, 0, disp=8)
    b.halt()
    return b.build(name="dram_stalls")


class TestIdleSkipping:
    def test_steps_fewer_than_cycles_on_memory_stalls(self):
        """A serial DRAM chase is mostly idle: the number of step() calls
        must be far below the simulated cycle count."""
        core = Core(dram_stall_program(), make_scheme("unsafe"))
        steps = 0
        while not core.halted:
            core.step()
            steps += 1
        assert core.stats.committed_instructions > 0
        assert steps < core.cycle / 3

    def test_clock_is_monotone(self):
        core = Core(dram_stall_program(), make_scheme("unsafe"))
        last = -1
        while not core.halted:
            assert core.cycle > last
            last = core.cycle
            core.step()

    def test_skip_preserves_architectural_result(self):
        program = dram_stall_program()
        reference = program.interpret().state.read_mem(8)
        core = Core(dram_stall_program(), make_scheme("unsafe"))
        core.run()
        assert core.arch.read_mem(8) == reference

    def test_skip_preserves_timing_against_manual_stepping(self):
        """Stepping manually (which also uses the same skip logic) and
        run() must agree exactly on the final cycle count."""
        stepped = Core(dram_stall_program(), make_scheme("unsafe"))
        while not stepped.halted:
            stepped.step()
        ran = Core(dram_stall_program(), make_scheme("unsafe"))
        ran.run()
        assert stepped.cycle == ran.cycle

    @pytest.mark.parametrize("scheme", ["nda", "stt", "dom", "dom+ap"])
    def test_skip_safe_under_every_scheme(self, scheme):
        program = dram_stall_program()
        reference = program.interpret().state.read_mem(8)
        core = Core(dram_stall_program(), make_scheme(scheme))
        core.run()
        assert core.arch.read_mem(8) == reference
