"""The idle-cycle fast-forward must be an optimization, never a semantic.

``Core.step`` jumps the clock to the next timed event when provably
nothing can happen.  These tests pin the conditions: jumps only occur
while stalled, never lose events, and leave committed state identical to
what a stall-free (always-busy) run produces.

The equivalence contract is checked differentially: ``idle_skip=False``
turns the same core into the per-cycle reference loop (every phase
visited every cycle), and every scheme × workload pairing must produce
bit-identical :class:`SimStats` — including the cycle count — in both
modes.
"""

import random

import pytest

from repro.common.config import GuardrailConfig, small_config
from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme

ALL_SCHEMES = ("unsafe", "nda", "stt", "dom", "dom+ap", "dom+vp")


def assert_stats_identical(event_core, reference_core):
    """Bit-identical SimStats (cycles included) between the two loops."""
    a = event_core.stats.as_dict()
    b = reference_core.stats.as_dict()
    diffs = {k: (a[k], b[k]) for k in a if a[k] != b[k]}
    assert not diffs, f"event-driven vs reference loop diverged: {diffs}"


def dram_stall_program(hops=6):
    b = CodeBuilder()
    chain = [0x100000 + 8192 * i for i in range(hops + 1)]
    for here, there in zip(chain, chain[1:]):
        b.set_memory(here, there)
    b.li(1, chain[0])
    for _ in range(hops):
        b.load(1, 1)
    b.store(1, 0, disp=8)
    b.halt()
    return b.build(name="dram_stalls")


class TestIdleSkipping:
    def test_steps_fewer_than_cycles_on_memory_stalls(self):
        """A serial DRAM chase is mostly idle: the number of step() calls
        must be far below the simulated cycle count."""
        core = Core(dram_stall_program(), make_scheme("unsafe"))
        steps = 0
        while not core.halted:
            core.step()
            steps += 1
        assert core.stats.committed_instructions > 0
        assert steps < core.cycle / 3

    def test_clock_is_monotone(self):
        core = Core(dram_stall_program(), make_scheme("unsafe"))
        last = -1
        while not core.halted:
            assert core.cycle > last
            last = core.cycle
            core.step()

    def test_skip_preserves_architectural_result(self):
        program = dram_stall_program()
        reference = program.interpret().state.read_mem(8)
        core = Core(dram_stall_program(), make_scheme("unsafe"))
        core.run()
        assert core.arch.read_mem(8) == reference

    def test_skip_preserves_timing_against_manual_stepping(self):
        """Stepping manually (which also uses the same skip logic) and
        run() must agree exactly on the final cycle count."""
        stepped = Core(dram_stall_program(), make_scheme("unsafe"))
        while not stepped.halted:
            stepped.step()
        ran = Core(dram_stall_program(), make_scheme("unsafe"))
        ran.run()
        assert stepped.cycle == ran.cycle

    @pytest.mark.parametrize("scheme", ["nda", "stt", "dom", "dom+ap"])
    def test_skip_safe_under_every_scheme(self, scheme):
        program = dram_stall_program()
        reference = program.interpret().state.read_mem(8)
        core = Core(dram_stall_program(), make_scheme(scheme))
        core.run()
        assert core.arch.read_mem(8) == reference


def mshr_burst_program(loads=40):
    """More independent misses in flight than the MSHR file can hold, so
    overflowing loads park in the MSHR retry queue and re-attempt at the
    file's next-free cycle — the wake source idle skipping must honor."""
    b = CodeBuilder()
    base = 0x400000
    for i in range(loads):
        b.set_memory(base + 8192 * i, i * 3 + 1)
    b.li(1, base)
    for i in range(loads):
        b.load(2 + (i % 24), 1, disp=8192 * i)
    b.halt()
    return b.build(name="mshr_burst")


def forward_block_program():
    """A store whose data arrives from a DRAM miss, then a load to the
    same address: the load's forward attempt blocks on the unready store
    and parks in the forward retry queue until the producer completes."""
    b = CodeBuilder()
    b.set_memory(0x500000, 77)
    b.li(1, 0x500000)
    b.load(2, 1)          # DRAM miss produces the store data
    b.store(2, 1, disp=8)  # store waits on r2
    b.load(3, 1, disp=8)   # must forward from the blocked store
    b.store(3, 0, disp=16)
    b.halt()
    return b.build(name="forward_block")


class TestDifferentialEquivalence:
    """Satellite 3: skip-on vs skip-off must commit *identical* stats —
    every counter, including the cycle count — across all schemes."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("workload", ["mcf", "hmmer", "lbm"])
    def test_figure6_workloads_bit_identical(self, workload, scheme):
        from repro.workloads.profiles import build_workload

        budget = 1_500
        event = Core(build_workload(workload), make_scheme(scheme))
        event.run(max_instructions=budget)
        reference = Core(
            build_workload(workload), make_scheme(scheme), idle_skip=False
        )
        reference.run(max_instructions=budget)
        assert_stats_identical(event, reference)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_mshr_pressure_bit_identical(self, scheme):
        event = Core(mshr_burst_program(), make_scheme(scheme))
        event.run()
        reference = Core(
            mshr_burst_program(), make_scheme(scheme), idle_skip=False
        )
        reference.run()
        assert event.halted and reference.halted
        assert_stats_identical(event, reference)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_forward_block_bit_identical(self, scheme):
        event = Core(forward_block_program(), make_scheme(scheme))
        event.run()
        reference = Core(
            forward_block_program(), make_scheme(scheme), idle_skip=False
        )
        reference.run()
        assert event.halted and reference.halted
        assert_stats_identical(event, reference)
        assert event.arch.read_mem(16) == 77

    def test_budget_break_cycles_match(self):
        """Stopping mid-stall must not leak the trailing idle-skip jump
        into the reported cycle count (measurement-boundary contract)."""
        for budget in (1, 3, 5, 7):
            event = Core(dram_stall_program(), make_scheme("dom+ap"))
            event.run(max_instructions=budget)
            reference = Core(
                dram_stall_program(), make_scheme("dom+ap"), idle_skip=False
            )
            reference.run(max_instructions=budget)
            assert event.stats.cycles == reference.stats.cycles, budget


def random_program(seed, length=90):
    """A seeded random mix of ALU ops, (dependent) loads, stores, forward
    branches, and one bounded backward loop — guaranteed to halt, shaped
    to exercise shadows, squashes, forwarding, and the stride prefetcher."""
    rng = random.Random(seed)
    b = CodeBuilder()
    base = 0x10000
    words = 64
    for i in range(words):
        # Values double as in-range offsets so chased pointers stay legal.
        b.set_memory(base + 8 * i, 8 * rng.randrange(words))
    b.li(1, base)
    for r in range(2, 8):
        b.li(r, rng.randrange(1, 200))
    b.li(15, 2)  # backward-loop trip counter
    b.label("loop")
    alu_ops = ("add", "sub", "xor", "and_", "or_", "mul")
    skip_until = -1
    for i in range(length):
        kind = rng.choices(
            ("alu", "load", "chase", "store", "branch"),
            weights=(4, 3, 2, 2, 2),
        )[0]
        if kind == "alu":
            op = getattr(b, rng.choice(alu_ops))
            op(rng.randrange(2, 12), rng.randrange(1, 12), rng.randrange(1, 12))
        elif kind == "load":
            b.load(rng.randrange(2, 12), 1, disp=8 * rng.randrange(words))
        elif kind == "chase":
            # Dependent load: use a loaded value as the next offset.
            b.load(13, 1, disp=8 * rng.randrange(words))
            b.add(14, 1, 13)
            b.load(rng.randrange(2, 12), 14)
        elif kind == "store":
            b.store(rng.randrange(2, 12), 1, disp=8 * rng.randrange(words))
        elif kind == "branch" and b.here >= skip_until:
            # Forward branch over the next few emitted instructions.
            skip_until = b.here + 1 + rng.randrange(2, 6)
            op = getattr(b, rng.choice(("beq", "bne", "blt", "bge")))
            op(rng.randrange(1, 12), rng.randrange(1, 12), skip_until)
    # Pad so any trailing forward branch has a real landing site.
    while b.here < skip_until:
        b.nop()
    b.addi(15, 15, -1)
    b.bne(15, 0, "loop")
    b.store(2, 1, disp=0)
    b.halt()
    return b.build(name=f"random_{seed}")


class TestPropertySweep:
    """Satellite 4: seeded random programs × schemes × guardrails on/off.

    Every combination must produce bit-identical SimStats between the
    event-driven loop and the per-cycle reference loop, and guardrails
    (a pure observer) must never perturb simulated timing."""

    GUARDRAIL_LEVELS = ("off", "full")

    @pytest.mark.parametrize("guardrails", GUARDRAIL_LEVELS)
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_programs_bit_identical(self, seed, scheme, guardrails):
        config = small_config().with_overrides(
            guardrails=GuardrailConfig(level=guardrails, check_interval=64)
        )
        event = Core(random_program(seed), make_scheme(scheme), config=config)
        event.run()
        reference = Core(
            random_program(seed),
            make_scheme(scheme),
            config=config,
            idle_skip=False,
        )
        reference.run()
        assert event.halted and reference.halted
        assert_stats_identical(event, reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_guardrails_do_not_perturb_timing(self, seed):
        """The same program under level=off and level=full must time out
        identically — the checker observes, it never schedules."""
        stats = {}
        for level in self.GUARDRAIL_LEVELS:
            config = small_config().with_overrides(
                guardrails=GuardrailConfig(level=level, check_interval=64)
            )
            core = Core(random_program(seed), make_scheme("dom+ap"), config=config)
            core.run()
            stats[level] = core.stats.as_dict()
        assert stats["off"] == stats["full"]
