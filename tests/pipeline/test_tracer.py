"""Tests for the pipeline tracer."""

import pytest

from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.trace import PipelineTracer

from tests.conftest import counting_loop


def traced_run(program, scheme="unsafe", capacity=10_000):
    core = Core(program, make_scheme(scheme))
    tracer = PipelineTracer(capacity=capacity)
    core.tracer = tracer
    core.run()
    return core, tracer


class TestRecording:
    def test_lifecycle_recorded(self):
        core, tracer = traced_run(counting_loop(20))
        committed = tracer.committed()
        assert len(committed) == core.stats.committed_instructions
        for record in committed:
            assert record.dispatch_cycle >= 0
            assert record.commit_cycle >= record.dispatch_cycle

    def test_squashed_instructions_recorded(self):
        core, tracer = traced_run(counting_loop(50))
        assert len(tracer.squashed()) == core.stats.squashed_instructions
        for record in tracer.squashed():
            assert record.fate == "squashed"
            assert record.commit_cycle == -1

    def test_issue_precedes_complete(self):
        _, tracer = traced_run(counting_loop(20))
        for record in tracer.committed():
            if record.issue_cycle >= 0:
                assert record.issue_cycle >= record.dispatch_cycle
                assert record.complete_cycle >= record.issue_cycle

    def test_capacity_bounds_memory(self):
        _, tracer = traced_run(counting_loop(200), capacity=50)
        assert len(tracer.records()) <= 50
        assert tracer.dropped > 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PipelineTracer(capacity=0)

    def test_doppelganger_flag_captured(self):
        from tests.doppelganger.test_engine import strided_loop

        _, tracer = traced_run(strided_loop(n=120), scheme="stt+ap")
        predicted = [r for r in tracer.loads() if r.dl_predicted]
        assert predicted, "no doppelganger-covered loads traced"

    def test_lifetime(self):
        _, tracer = traced_run(counting_loop(10))
        record = tracer.committed()[0]
        assert record.lifetime() == record.commit_cycle - record.dispatch_cycle


class TestRendering:
    def test_timeline_contains_markers(self):
        _, tracer = traced_run(counting_loop(10))
        text = tracer.render_timeline(count=10)
        assert "D" in text
        assert "R" in text
        assert "li r1, 10" in text

    def test_timeline_empty(self):
        assert "no trace records" in PipelineTracer().render_timeline()

    def test_summary_counts(self):
        core, tracer = traced_run(counting_loop(30))
        text = tracer.render_summary()
        assert f"{core.stats.committed_instructions} committed" in text
        assert "commit latency" in text

    def test_tracing_does_not_change_results(self):
        program = counting_loop(40)
        plain = Core(program, make_scheme("dom+ap"))
        plain.run()
        traced_core, _ = traced_run(counting_loop(40), scheme="dom+ap")
        assert traced_core.arch.read_mem(8) == plain.arch.read_mem(8)
        assert traced_core.stats.cycles == plain.stats.cycles
