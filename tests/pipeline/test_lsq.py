"""Load/store queue behaviour: forwarding, violations, invalidations."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import ALL_SCHEME_NAMES, run_to_completion


class TestStoreToLoadForwarding:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEME_NAMES)
    def test_load_after_store_same_address(self, scheme_name):
        program = Program(
            assemble(
                """
                li r1, 42
                store r1, [r0 + 0x400]
                load r2, [r0 + 0x400]
                addi r3, r2, 0
                store r3, [r0 + 8]
                halt
                """
            )
        )
        core = run_to_completion(program, scheme_name)
        assert core.arch.read_mem(8) == 42

    def test_forwarding_stat_counted(self):
        b = CodeBuilder()
        b.li(1, 20)
        b.li(2, 0)
        b.li(4, 5)
        b.label("loop")
        b.store(4, 0, disp=0x400)
        b.load(5, 0, disp=0x400)
        b.add(4, 5, 5)
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        b.halt()
        core = run_to_completion(b.build(), "unsafe")
        assert core.stats.store_to_load_forwards > 0

    @pytest.mark.parametrize("scheme_name", ["unsafe", "nda", "stt", "dom"])
    def test_youngest_matching_store_wins(self, scheme_name):
        program = Program(
            assemble(
                """
                li r1, 1
                li r2, 2
                store r1, [r0 + 0x400]
                store r2, [r0 + 0x400]
                load r3, [r0 + 0x400]
                store r3, [r0 + 8]
                halt
                """
            )
        )
        core = run_to_completion(program, scheme_name)
        assert core.arch.read_mem(8) == 2

    def test_store_to_different_word_not_forwarded(self):
        program = Program(
            assemble(
                """
                li r1, 9
                store r1, [r0 + 0x400]
                load r2, [r0 + 0x408]
                store r2, [r0 + 8]
                halt
                """
            ),
            initial_memory={0x408: 55},
        )
        core = run_to_completion(program, "unsafe")
        assert core.arch.read_mem(8) == 55


class TestMemoryOrderViolations:
    def _violation_program(self) -> Program:
        """A store whose address resolves slowly, followed by a load to the
        same address that will speculatively read stale data."""
        b = CodeBuilder()
        b.set_memory(0x500, 111)       # stale value
        b.li(1, 0x500)
        b.li(2, 99)                    # value to store
        # Make the store's address depend on a long multiply chain.
        b.li(3, 1)
        for _ in range(10):
            b.mul(3, 3, 3)             # r3 stays 1, but slowly
        b.mul(4, 1, 3)                 # r4 = 0x500, late
        b.store(2, 4)                  # store 99 -> [0x500], address late
        b.load(5, 1)                   # load [0x500] — issues early, stale
        b.store(5, 0, disp=8)          # checksum must be 99
        b.halt()
        return b.build(name="violation")

    @pytest.mark.parametrize("scheme_name", ALL_SCHEME_NAMES)
    def test_violation_repaired(self, scheme_name):
        core = run_to_completion(self._violation_program(), scheme_name)
        assert core.arch.read_mem(8) == 99

    def test_violation_squashes_on_unsafe(self):
        core = run_to_completion(self._violation_program(), "unsafe")
        # The stale load must have been squashed and refetched.
        assert core.stats.squashed_instructions >= 1


class TestInvalidation:
    def test_invalidation_removes_cached_line(self):
        program = Program(assemble("load r1, [r0 + 0x600]\nhalt"))
        core = run_to_completion(program, "unsafe")
        assert core.hierarchy.is_cached(0x600)
        core.inject_invalidation(0x600)
        assert not core.hierarchy.is_cached(0x600)

    def test_invalidation_snoops_executed_loads(self):
        """An invalidation matching an executed, out-of-order load while an
        older load is still incomplete squashes it (consistency repair)."""
        b = CodeBuilder()
        b.set_memory(0x700, 1)
        b.set_memory(0x10000, 2)
        b.li(1, 0x10000)
        b.load(2, 1)          # slow (DRAM) older load
        b.load(3, 0, disp=0x700)  # fast younger load, executes first
        b.add(4, 2, 3)
        b.store(4, 0, disp=8)
        b.halt()
        core = Core(b.build(), make_scheme("unsafe"))
        # Step until the younger load has a value but the older doesn't.
        for _ in range(30):
            core.step()
        young = [u for u in core.lq if u.pc == 2]
        if young and young[0].result is not None:
            before = core.stats.squashed_instructions
            core.inject_invalidation(0x700)
            assert core.stats.lq_invalidation_matches >= 1
            assert core.stats.squashed_instructions > before
        core.run()
        assert core.arch.read_mem(8) == 3
