"""Decoded-program cache: keying, sharing, and process isolation.

The cache is keyed on (program contents, config fingerprint).  The
contracts pinned here:

* a config change that alters any simulated knob misses by construction
  (the fingerprint is part of the key), and the baked-in config-derived
  values (latencies) actually differ between the entries;
* guardrail-only config changes *share* the entry (guardrails are
  excluded from the fingerprint because they cannot change simulated
  behaviour);
* repeated runs of the same (program, config) — warmup + measure
  windows, repeated cores, both idle_skip modes — reuse one decode
  table by identity;
* the cache is process-local: worker processes under
  :class:`~repro.harness.parallel.ParallelSession` build their own,
  the parent's cache sees nothing, and pooled results stay bit-identical
  to serial ones.
"""

from dataclasses import replace

import pytest

from repro.common.config import GuardrailConfig, small_config
from repro.harness.parallel import ParallelSession
from repro.harness.runner import ExperimentSession, run_benchmark
from repro.pipeline.core import Core
from repro.pipeline.decode import (
    cache_info,
    clear_cache,
    decode_program,
)
from repro.schemes import make_scheme
from repro.workloads.profiles import build_workload


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def make_core(program, config, scheme="unsafe", **kwargs):
    return Core(program, make_scheme(scheme), config=config, **kwargs)


class TestKeying:
    def test_same_program_and_config_hits(self):
        program = build_workload("hmmer")
        config = small_config()
        first = decode_program(program, config)
        second = decode_program(program, config)
        assert first is second
        info = cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_config_fingerprint_change_invalidates(self):
        program = build_workload("hmmer")
        config = small_config()
        base = decode_program(program, config)
        slower = config.with_overrides(
            core=replace(config.core, alu_latency=config.core.alu_latency + 2)
        )
        other = decode_program(program, slower)
        assert other is not base
        assert cache_info()["misses"] == 2
        # The invalidation is substantive: decode bakes the ALU latency
        # into the entries, so sharing across these configs would have
        # simulated the wrong machine.
        baked = {entry[7] for entry in base.entries}
        baked_slow = {entry[7] for entry in other.entries}
        assert baked != baked_slow

    def test_guardrail_only_change_shares(self):
        program = build_workload("hmmer")
        config = small_config()
        first = decode_program(program, config)
        guarded = config.with_overrides(
            guardrails=GuardrailConfig(level="full")
        )
        assert decode_program(program, guarded) is first
        assert cache_info()["misses"] == 1

    def test_program_content_not_object_identity(self):
        config = small_config()
        first = decode_program(build_workload("hmmer"), config)
        # A fresh build returns a distinct Program object with identical
        # contents; the cache must key on contents.
        second = decode_program(build_workload("hmmer"), config)
        assert first is second

    def test_capacity_bounded(self):
        config = small_config()
        capacity = cache_info()["capacity"]
        names = ("hmmer", "mcf", "libquantum", "lbm")
        for index in range(capacity + 8):
            cfg = config.with_overrides(max_cycles=1_000_000 + index)
            decode_program(build_workload(names[index % len(names)]), cfg)
        assert cache_info()["size"] <= capacity


class TestSharingAcrossRuns:
    def test_cores_share_one_decode(self):
        program = build_workload("mcf")
        config = small_config()
        event = make_core(program, config, idle_skip=True)
        reference = make_core(program, config, idle_skip=False)
        assert event._dec_entries is reference._dec_entries
        info = cache_info()
        assert info["misses"] == 1 and info["hits"] >= 1

    def test_warmup_measure_sweep_decodes_once(self):
        config = small_config()
        first = run_benchmark("mcf", "stt", config, warmup=100, measure=300)
        second = run_benchmark("mcf", "stt", config, warmup=100, measure=300)
        assert first.stats == second.stats
        assert cache_info()["misses"] == 1

    def test_session_sweep_one_miss_per_benchmark(self):
        config = small_config()
        session = ExperimentSession(config=config, warmup=100, measure=300)
        session.sweep(("hmmer", "mcf"), ("unsafe", "stt", "dom"))
        assert cache_info()["misses"] == 2


class TestProcessIsolation:
    def test_parallel_session_no_cross_job_leakage(self, tmp_path):
        benchmarks, schemes = ("hmmer", "mcf"), ("unsafe", "dom")
        serial = ExperimentSession(warmup=100, measure=300).sweep(
            benchmarks, schemes
        )
        clear_cache()
        pooled = ParallelSession(
            warmup=100, measure=300, jobs=2, cache_dir=tmp_path
        ).sweep(benchmarks, schemes)
        # Workers decode in their own interpreters; nothing leaks into the
        # parent's process-local cache...
        info = cache_info()
        assert info["misses"] == 0 and info["size"] == 0
        # ...and isolation costs nothing in fidelity: pooled results are
        # bit-identical to the serial session's.
        assert len(pooled) == len(serial)
        for pair_pooled, pair_serial in zip(pooled, serial):
            assert pair_pooled.benchmark == pair_serial.benchmark
            assert pair_pooled.scheme == pair_serial.scheme
            assert pair_pooled.stats == pair_serial.stats
