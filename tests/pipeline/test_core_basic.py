"""Targeted behavioural tests for the out-of-order core."""

import pytest

from repro.common.config import SystemConfig, CoreConfig
from repro.common.errors import SimulationLimitError
from repro.isa.assembler import assemble
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import counting_loop, run_to_completion


class TestBasicExecution:
    def test_straight_line_commits_in_order(self):
        program = Program(assemble("li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt"))
        core = run_to_completion(program, "unsafe")
        assert core.arch.read_reg(3) == 3
        assert core.stats.committed_instructions == 4

    def test_loop_program(self):
        core = run_to_completion(counting_loop(50), "unsafe")
        assert core.arch.read_mem(8) == sum(range(50))

    def test_r0_write_discarded(self):
        program = Program(assemble("li r0, 99\naddi r1, r0, 1\nhalt"))
        core = run_to_completion(program, "unsafe")
        assert core.arch.read_reg(0) == 0
        assert core.arch.read_reg(1) == 1

    def test_max_instructions_budget(self):
        core = Core(counting_loop(10**6), make_scheme("unsafe"))
        stats = core.run(max_instructions=500)
        assert 500 <= stats.committed_instructions < 600
        assert not core.halted

    def test_cycle_budget_enforced(self):
        program = Program(assemble("loop: jmp loop"))
        config = SystemConfig(max_cycles=5000)
        core = Core(program, make_scheme("unsafe"), config=config)
        with pytest.raises(SimulationLimitError, match="exceeded"):
            core.run()

    def test_ipc_reported(self):
        core = run_to_completion(counting_loop(100), "unsafe")
        assert core.stats.ipc > 0.5

    def test_stats_count_instruction_classes(self):
        b = CodeBuilder()
        b.li(1, 5)
        b.li(2, 0)
        b.label("loop")
        b.load(3, 0, disp=0x100)
        b.store(3, 0, disp=0x108)
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        b.halt()
        core = run_to_completion(b.build(), "unsafe")
        assert core.stats.committed_loads == 5
        assert core.stats.committed_stores == 5
        assert core.stats.committed_branches == 5


class TestBranchHandling:
    def test_mispredictions_squash_wrong_path(self):
        """First encounter of a taken branch mispredicts (predictor cold)."""
        program = Program(
            assemble(
                """
                li r1, 1
                beq r1, r1, target
                li r2, 111     # wrong path
                halt
            target:
                li r2, 222
                halt
                """
            )
        )
        core = run_to_completion(program, "unsafe")
        assert core.arch.read_reg(2) == 222
        assert core.stats.branch_mispredictions >= 1
        assert core.stats.squashed_instructions >= 1

    def test_predictor_learns_loop_branch(self):
        core = run_to_completion(counting_loop(200), "unsafe")
        # A 200-iteration loop branch should mispredict only a handful of
        # times once the gshare counters warm up.
        assert core.stats.branch_mispredictions < 30

    def test_wrong_path_instructions_fetched_not_committed(self):
        core = run_to_completion(counting_loop(50), "unsafe")
        assert core.stats.fetched_instructions > core.stats.committed_instructions
        assert (
            core.stats.fetched_instructions
            == core.stats.committed_instructions + core.stats.squashed_instructions
            + _inflight_allowance(core)
        )

    def test_jmp_is_free_of_misprediction(self):
        program = Program(
            assemble("jmp over\nli r1, 111\nover: li r1, 5\nhalt")
        )
        core = run_to_completion(program, "unsafe")
        assert core.arch.read_reg(1) == 5
        assert core.stats.branch_mispredictions == 0


def _inflight_allowance(core) -> int:
    """Instructions still in the ROB when halt committed."""
    return len(core.rob)


class TestCapacityLimits:
    def test_tiny_rob_still_correct(self):
        config = SystemConfig(
            core=CoreConfig(rob_entries=8, iq_entries=4, lq_entries=4, sq_entries=4,
                            decode_width=2, issue_width=2, commit_width=2)
        )
        core = Core(counting_loop(30), make_scheme("unsafe"), config=config)
        core.run()
        assert core.arch.read_mem(8) == sum(range(30))

    def test_single_port_core_still_correct(self):
        config = SystemConfig(core=CoreConfig(load_ports=1, store_ports=1))
        b = CodeBuilder()
        b.set_array(0x1000, list(range(64)))
        b.li(1, 64)
        b.li(2, 0)
        b.li(3, 0)
        b.label("loop")
        b.shli(4, 2, 3)
        b.addi(4, 4, 0x1000)
        b.load(5, 4)
        b.add(3, 3, 5)
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        b.store(3, 0, disp=8)
        b.halt()
        core = Core(b.build(), make_scheme("unsafe"), config=config)
        core.run()
        assert core.arch.read_mem(8) == sum(range(64))

    def test_narrow_core_slower_than_wide(self):
        narrow = SystemConfig(
            core=CoreConfig(decode_width=1, issue_width=1, commit_width=1)
        )
        program = counting_loop(300)
        slow = Core(program, make_scheme("unsafe"), config=narrow)
        slow.run()
        fast = Core(program, make_scheme("unsafe"))
        fast.run()
        assert slow.stats.cycles > fast.stats.cycles


class TestMemoryBehaviour:
    def test_load_sees_committed_store(self):
        program = Program(
            assemble(
                """
                li r1, 7
                store r1, [r0 + 0x100]
                load r2, [r0 + 0x100]
                addi r2, r2, 1
                store r2, [r0 + 0x108]
                halt
                """
            )
        )
        core = run_to_completion(program, "unsafe")
        assert core.arch.read_mem(0x108) == 8

    def test_cache_warms_across_iterations(self):
        b = CodeBuilder()
        b.li(1, 100)
        b.li(2, 0)
        b.label("loop")
        b.load(3, 0, disp=0x2000)  # same line every iteration
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        b.halt()
        core = run_to_completion(b.build(), "unsafe")
        assert core.stats.l1_hits > 90

    def test_dram_latency_visible_in_cycles(self):
        """A pointer chase across distinct lines pays serialized misses."""
        b = CodeBuilder()
        chain = [0x10000 + 4096 * i for i in range(20)]
        for here, there in zip(chain, chain[1:]):
            b.set_memory(here, there)
        b.set_memory(chain[-1], 0)
        b.li(1, 0x10000)
        for _ in range(19):
            b.load(1, 1)
        b.store(1, 0, disp=8)
        b.halt()
        core = run_to_completion(b.build(), "unsafe")
        memory = core.config.memory
        dram_roundtrip = memory.l3.latency + memory.dram_latency
        assert core.stats.cycles > 19 * dram_roundtrip
