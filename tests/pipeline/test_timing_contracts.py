"""Timing contracts: the latencies and bandwidth limits the configuration
promises must be visible in measured cycle counts."""

import pytest

from repro.common.config import CacheConfig, CoreConfig, MemoryConfig, SystemConfig
from repro.isa.assembler import assemble
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme


def run(program, config=None, scheme="unsafe"):
    core = Core(program, make_scheme(scheme), config=config)
    core.run()
    return core


class TestLatencyContracts:
    def test_serial_alu_chain_paces_at_alu_latency(self):
        n = 64
        body = "\n".join("addi r1, r1, 1" for _ in range(n))
        program = Program(assemble(f"li r1, 0\n{body}\nhalt"))
        core = run(program)
        # The dependent chain bounds execution: at least n * alu_latency.
        assert core.stats.cycles >= n * core.config.core.alu_latency

    def test_serial_mul_chain_paces_at_mul_latency(self):
        n = 32
        body = "\n".join("mul r1, r1, r1" for _ in range(n))
        program = Program(assemble(f"li r1, 1\n{body}\nhalt"))
        core = run(program)
        assert core.stats.cycles >= n * core.config.core.mul_latency

    def test_l1_hit_latency_visible_in_pointer_chase(self):
        """A warm serial chase costs at least l1.latency per hop."""
        hops = 24
        b = CodeBuilder()
        chain = [0x8000 + 64 * i for i in range(hops + 1)]
        for here, there in zip(chain, chain[1:]):
            b.set_memory(here, there)
        b.li(1, 0x8000)
        for _ in range(hops):
            b.load(1, 1)
        b.halt()
        core = Core(b.build(), make_scheme("unsafe"))
        core.hierarchy.warm(chain)
        core.run()
        assert core.stats.cycles >= hops * core.config.memory.l1.latency

    def test_dram_latency_dominates_cold_chase(self):
        hops = 10
        b = CodeBuilder()
        chain = [0x80000 + 8192 * i for i in range(hops + 1)]
        for here, there in zip(chain, chain[1:]):
            b.set_memory(here, there)
        b.li(1, chain[0])
        for _ in range(hops):
            b.load(1, 1)
        b.halt()
        core = run(b.build())
        memory = core.config.memory
        assert core.stats.cycles >= hops * (memory.l3.latency + memory.dram_latency)


class TestBandwidthContracts:
    def _independent_loads(self, count=48, base=0x9000):
        b = CodeBuilder()
        for i in range(count):
            b.set_memory(base + 8 * i, i)
        b.li(1, base)
        for i in range(count):
            b.load(2 + (i % 8), 1, disp=8 * i)
        b.halt()
        return b.build()

    def test_load_ports_bound_throughput(self):
        """48 warm independent loads need at least ceil(48/ports) cycles
        of memory issue."""
        program = self._independent_loads()
        narrow_cfg = SystemConfig(core=CoreConfig(load_ports=1))
        wide = Core(self._independent_loads(), make_scheme("unsafe"))
        wide.hierarchy.warm([0x9000 + 8 * i for i in range(48)])
        wide.run()
        narrow = Core(program, make_scheme("unsafe"), config=narrow_cfg)
        narrow.hierarchy.warm([0x9000 + 8 * i for i in range(48)])
        narrow.run()
        assert narrow.stats.cycles > wide.stats.cycles

    def test_mshrs_bound_mlp(self):
        """Cold independent misses overlap up to the MSHR count: with 2
        MSHRs, 16 DRAM misses take at least 8 serial DRAM rounds."""
        def cold_misses():
            b = CodeBuilder()
            b.li(1, 0)
            for i in range(16):
                b.load(2 + (i % 8), 1, disp=0x100000 + 8192 * i)
            b.halt()
            return b.build()

        starved_cfg = SystemConfig(
            memory=MemoryConfig(
                l1=CacheConfig("L1D", 48 * 1024, 12, latency=5, mshrs=2)
            )
        )
        roomy = run(cold_misses())
        starved = run(cold_misses(), config=starved_cfg)
        memory = starved.config.memory
        dram = memory.l3.latency + memory.dram_latency
        assert starved.stats.cycles >= (16 / 2) * dram * 0.9
        assert roomy.stats.cycles < starved.stats.cycles

    def test_commit_width_bounds_ipc(self):
        from tests.conftest import counting_loop

        core = run(counting_loop(500))
        assert core.stats.ipc <= core.config.core.commit_width

    def test_decode_width_bounds_ipc(self):
        narrow_cfg = SystemConfig(core=CoreConfig(decode_width=1))
        from tests.conftest import counting_loop

        core = run(counting_loop(500), config=narrow_cfg)
        assert core.stats.ipc <= 1.0 + 1e-9


class TestMispredictCost:
    def test_mispredict_costs_at_least_resolution_plus_redirect(self):
        """One guaranteed mispredict adds at least the pipeline-floor
        resolution delay plus the refetch penalty."""
        taken_once = Program(
            assemble(
                """
                li r1, 1
                beq r1, r1, target
                nop
            target:
                halt
                """
            )
        )
        straight = Program(assemble("li r1, 1\nnop\nhalt"))
        with_miss = run(taken_once)
        without = run(straight)
        core_cfg = with_miss.config.core
        floor = core_cfg.mispredict_penalty
        assert with_miss.stats.cycles - without.stats.cycles >= floor
