"""Squash machinery: rename rollback, shadow cleanup, nested wrong paths."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import ALL_SCHEME_NAMES, run_to_completion


def nested_mispredict_program():
    """Two levels of data-dependent branches, both mispredicted on their
    first encounter, with register writes on every path."""
    b = CodeBuilder()
    b.li(1, 1)
    b.li(5, 100)
    b.beq(1, 1, "outer_t")       # taken; cold predictor says not-taken
    b.li(5, 200)                 # wrong path write
    b.label("outer_t")
    b.li(2, 1)
    b.beq(2, 2, "inner_t")       # taken; mispredicted again
    b.li(5, 300)
    b.label("inner_t")
    b.addi(5, 5, 1)
    b.store(5, 0, disp=8)
    b.halt()
    return b.build(name="nested_mispredict")


class TestRenameRollback:
    @pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
    def test_wrong_path_writes_rolled_back(self, scheme):
        core = run_to_completion(nested_mispredict_program(), scheme)
        assert core.arch.read_mem(8) == 101
        assert core.stats.branch_mispredictions >= 1

    def test_rename_map_consistent_after_squash(self):
        core = Core(nested_mispredict_program(), make_scheme("unsafe"))
        core.run()
        # After completion every mapping must refer to a non-squashed uop.
        for reg, producer in core.rename.items():
            assert not producer.squashed

    def test_wrong_path_register_chain(self):
        """A chain of wrong-path overwrites of the same register must be
        fully unwound (prev_producer restoration, youngest-first)."""
        source = """
            li r1, 7
            li r2, 1
            beq r2, r2, good
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
        good:
            store r1, [r0 + 8]
            halt
        """
        core = run_to_completion(Program(assemble(source)), "unsafe")
        assert core.arch.read_mem(8) == 7


class TestShadowCleanupOnSquash:
    def test_squashed_branches_leave_no_shadow(self):
        core = run_to_completion(nested_mispredict_program(), "dom")
        from repro.pipeline.shadows import INFINITE_SEQ

        assert core.shadows.frontier() == INFINITE_SEQ

    def test_squashed_stores_leave_no_shadow(self):
        source = """
            li r1, 1
            beq r1, r1, over
            store r1, [r0 + 0x900]   # wrong path store: shadow must die
            store r1, [r0 + 0x908]
        over:
            li r2, 5
            store r2, [r0 + 8]
            halt
        """
        core = run_to_completion(Program(assemble(source)), "dom")
        from repro.pipeline.shadows import INFINITE_SEQ

        assert core.shadows.frontier() == INFINITE_SEQ
        assert core.arch.read_mem(0x900) == 0  # never committed

    def test_queues_empty_after_halt(self):
        core = run_to_completion(nested_mispredict_program(), "stt+ap")
        assert not core.lq or all(u.squashed for u in core.lq)
        assert not core.sq or all(u.squashed for u in core.sq)


class TestWrongPathContainment:
    @pytest.mark.parametrize("scheme", ["unsafe", "dom+ap", "stt+ap"])
    def test_wrong_path_stores_never_reach_memory(self, scheme):
        source = """
            li r1, 1
            li r2, 1
            beq r1, r2, skip
            store r1, [r0 + 0x700]
        skip:
            halt
        """
        core = run_to_completion(Program(assemble(source)), scheme)
        assert core.arch.read_mem(0x700) == 0

    def test_wrong_path_loads_do_access_cache(self):
        """Transient loads must really touch the cache (that's Spectre)."""
        source = """
            li r1, 1
            li r2, 1
            beq r1, r2, skip
            load r3, [r0 + 0x7000]
        skip:
            halt
        """
        core = run_to_completion(Program(assemble(source)), "unsafe")
        assert core.hierarchy.is_cached(0x7000)

    def test_fetch_past_program_end_recovers(self):
        """Wrong-path fetch running off the program must not wedge."""
        source = """
            li r1, 1
            beq r1, r1, done
            addi r2, r2, 1
        done:
            store r1, [r0 + 8]
            halt
        """
        core = run_to_completion(Program(assemble(source)), "unsafe")
        assert core.arch.read_mem(8) == 1

    def test_deep_wrong_path_loop_bounded_by_window(self):
        """A mispredict into a tight wrong-path loop must be bounded by
        the ROB and cleaned up on resolution."""
        source = """
            li r1, 1
            li r2, 2
            beq r1, r1, out     # taken; predicted not-taken at first
        spin:
            addi r3, r3, 1
            jmp spin
        out:
            store r2, [r0 + 8]
            halt
        """
        core = run_to_completion(Program(assemble(source)), "unsafe")
        assert core.arch.read_mem(8) == 2
        assert core.stats.squashed_instructions > 0
