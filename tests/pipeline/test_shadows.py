"""Tests for shadow tracking and the monotone frontier."""

import pytest

from repro.common.errors import StructuralHazardError
from repro.pipeline.shadows import INFINITE_SEQ, ShadowTracker


class TestFrontier:
    def test_empty_tracker_nothing_speculative(self):
        t = ShadowTracker()
        assert t.frontier() == INFINITE_SEQ
        assert t.is_nonspeculative(0)
        assert t.is_nonspeculative(10**9)

    def test_branch_casts_shadow_over_younger(self):
        t = ShadowTracker()
        t.branch_dispatched(5)
        assert t.is_speculative(6)
        assert t.is_nonspeculative(5)  # own shadow does not cover itself
        assert t.is_nonspeculative(4)

    def test_store_casts_shadow(self):
        t = ShadowTracker()
        t.store_dispatched(3)
        assert t.is_speculative(4)
        t.store_address_resolved(3)
        assert t.is_nonspeculative(4)

    def test_frontier_is_min_over_both_sources(self):
        t = ShadowTracker()
        t.branch_dispatched(10)
        t.store_dispatched(20)
        assert t.frontier() == 10
        t.branch_resolved(10)
        assert t.frontier() == 20

    def test_out_of_order_resolution(self):
        t = ShadowTracker()
        t.branch_dispatched(1)
        t.branch_dispatched(2)
        t.branch_dispatched(3)
        t.branch_resolved(2)  # younger resolves first
        assert t.frontier() == 1
        t.branch_resolved(1)
        assert t.frontier() == 3

    def test_squash_removes_casters(self):
        t = ShadowTracker()
        t.branch_dispatched(1)
        t.store_dispatched(2)
        t.caster_squashed(2, is_branch=False)
        t.caster_squashed(1, is_branch=True)
        assert t.frontier() == INFINITE_SEQ

    def test_resolution_idempotent(self):
        t = ShadowTracker()
        t.branch_dispatched(1)
        t.branch_resolved(1)
        t.branch_resolved(1)  # no error
        assert t.frontier() == INFINITE_SEQ

    def test_casters_must_arrive_in_order(self):
        t = ShadowTracker()
        t.branch_dispatched(5)
        with pytest.raises(StructuralHazardError):
            t.branch_dispatched(4)

    def test_counts(self):
        t = ShadowTracker()
        t.branch_dispatched(1)
        t.branch_dispatched(2)
        t.store_dispatched(3)
        assert t.unresolved_branches() == 2
        assert t.unresolved_stores() == 1
        t.branch_resolved(1)
        assert t.unresolved_branches() == 1

    def test_reset(self):
        t = ShadowTracker()
        t.branch_dispatched(1)
        t.reset()
        assert t.frontier() == INFINITE_SEQ
        t.branch_dispatched(0)  # fresh ordering allowed after reset
        assert t.frontier() == 0


class TestMonotonicity:
    def test_nonspeculative_is_monotone_per_instruction(self):
        """Once an already-dispatched instruction is non-speculative it
        stays non-speculative forever — the property the max-root taint
        representation and every frontier-keyed wait in the core rely on.
        (Casters arrive in sequence order, so later arrivals can never
        re-shadow an older instruction.)"""
        import random

        rng = random.Random(42)
        t = ShadowTracker()
        live = []
        seq = 0
        # Instructions whose non-speculative status we watch.
        released: set[int] = set()
        for _ in range(500):
            if rng.random() < 0.6 or not live:
                seq += 1
                if rng.random() < 0.5:
                    t.branch_dispatched(seq)
                    live.append((seq, True))
                else:
                    t.store_dispatched(seq)
                    live.append((seq, False))
            else:
                index = rng.randrange(len(live))
                caster, is_branch = live.pop(index)
                if is_branch:
                    t.branch_resolved(caster)
                else:
                    t.store_address_resolved(caster)
            # Record and re-check monotone release for every seq so far.
            for watched in range(1, seq + 1):
                if t.is_nonspeculative(watched):
                    released.add(watched)
            for watched in released:
                assert t.is_nonspeculative(watched)
