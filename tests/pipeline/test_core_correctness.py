"""Differential correctness: the out-of-order core must commit exactly the
architectural state the in-order interpreter produces — under every scheme,
with wrong-path execution, squashes, forwarding, and doppelgangers active.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import ALL_SCHEME_NAMES

DATA_BASE = 0x10000
DATA_MASK = 0x7F8  # 256 words


def random_program(seed: int, body_length: int = 40, iterations: int = 12) -> Program:
    """A random but always-terminating program.

    One counted outer loop whose body is random ALU/memory/branch soup:
    data-dependent forward branches create mispredictions and wrong paths;
    loads/stores hit a small shared region so forwarding and violations
    occur; every register value flows into the final checksum.
    """
    rng = random.Random(seed)
    b = CodeBuilder()
    for i in range(64):
        b.set_memory(DATA_BASE + 8 * i, rng.randrange(1 << 30))
    b.li(9, iterations)
    b.li(10, 0)       # loop counter
    b.li(11, DATA_BASE)
    for reg in range(1, 9):
        b.li(reg, rng.randrange(1, 1 << 16))
    b.label("outer")
    skip_label = 0
    open_label = None
    for pos in range(body_length):
        # Close any pending forward branch target that has come due.
        if open_label is not None and pos >= open_label[1]:
            b.label(open_label[0])
            open_label = None
        choice = rng.random()
        rd = rng.randrange(1, 9)
        ra = rng.randrange(1, 9)
        rb = rng.randrange(1, 9)
        if choice < 0.40:  # ALU
            op = rng.choice(["add", "sub", "xor", "and_", "or_", "mul"])
            getattr(b, op)(rd, ra, rb)
        elif choice < 0.55:  # ALU immediate
            op = rng.choice(["addi", "xori", "shri", "shli", "andi"])
            imm = rng.randrange(0, 8) if op in ("shri", "shli") else rng.randrange(1, 999)
            getattr(b, op)(rd, ra, imm)
        elif choice < 0.75:  # load (address derived from register data)
            b.andi(12, ra, DATA_MASK)
            b.add(13, 11, 12)
            b.load(rd, 13)
        elif choice < 0.88:  # store
            b.andi(12, ra, DATA_MASK)
            b.add(13, 11, 12)
            b.store(rb, 13)
        elif open_label is None:  # data-dependent forward branch
            skip_label += 1
            name = f"skip{seed}_{skip_label}"
            distance = rng.randrange(2, 6)
            b.andi(12, ra, 1)
            b.beq(12, 0, name)
            open_label = (name, pos + distance)
        else:
            b.nop()
    if open_label is not None:
        b.label(open_label[0])
    b.addi(10, 10, 1)
    b.blt(10, 9, "outer")
    # Fold all registers into a checksum and store it.
    b.li(15, 0)
    for reg in range(1, 9):
        b.add(15, 15, reg)
    b.store(15, 0, disp=8)
    b.halt()
    return b.build(name=f"random_{seed}")


def assert_equivalent(program: Program, scheme_name: str) -> Core:
    reference = program.interpret().state
    core = Core(program, make_scheme(scheme_name))
    core.run()
    assert core.halted, f"{scheme_name}: did not halt"
    for reg in range(32):
        assert core.arch.read_reg(reg) == reference.read_reg(reg), (
            f"{scheme_name}: r{reg} diverged"
        )
    touched = set(reference.memory) | set(core.arch.memory)
    for address in sorted(touched):
        assert core.arch.read_mem(address) == reference.read_mem(address), (
            f"{scheme_name}: mem[{address:#x}] diverged"
        )
    return core


@pytest.mark.parametrize("scheme_name", ALL_SCHEME_NAMES)
def test_fixed_random_programs_match_interpreter(scheme_name):
    for seed in (1, 2, 3):
        assert_equivalent(random_program(seed), scheme_name)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_unsafe_matches_interpreter(seed):
    assert_equivalent(random_program(seed, body_length=30, iterations=8), "unsafe")


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheme_name=st.sampled_from(ALL_SCHEME_NAMES),
)
def test_property_all_schemes_match_interpreter(seed, scheme_name):
    assert_equivalent(random_program(seed, body_length=25, iterations=6), scheme_name)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_schemes_commit_same_instruction_count(seed):
    """All schemes execute the same architectural instruction stream."""
    program = random_program(seed, body_length=25, iterations=6)
    counts = set()
    for scheme_name in ("unsafe", "nda", "stt", "dom", "dom+ap"):
        core = Core(program, make_scheme(scheme_name))
        stats = core.run()
        counts.add(stats.committed_instructions)
    assert len(counts) == 1
