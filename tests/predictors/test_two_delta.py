"""Tests for the two-delta stride table extension."""

import pytest

from repro.common.config import PredictorConfig
from repro.common.errors import ConfigError
from repro.predictors.stride import (
    StrideTable,
    TwoDeltaStrideTable,
    make_stride_table,
)


def table(kind="two_delta", threshold=2) -> StrideTable:
    return make_stride_table(
        PredictorConfig(entries=32, ways=4, kind=kind,
                        confidence_threshold=threshold)
    )


def train(t, pc, addresses):
    for address in addresses:
        t.train_commit(pc, address)


class TestFactory:
    def test_kinds(self):
        assert type(make_stride_table(PredictorConfig())) is StrideTable
        assert isinstance(table("two_delta"), TwoDeltaStrideTable)

    def test_unknown_kind_rejected_by_config(self):
        with pytest.raises(ConfigError, match="unknown predictor kind"):
            PredictorConfig(kind="markov")


class TestTwoDeltaBehaviour:
    def test_learns_plain_stride(self):
        t = table()
        train(t, 0x40, [0, 8, 16, 24, 32])
        assert t.predict_current(0x40) == 40

    def test_single_break_does_not_derail(self):
        """The defining property: one irregular access leaves the
        predicting stride intact, so the stream resumes immediately."""
        t = table()
        train(t, 0x40, [0, 8, 16, 24, 32])
        t.train_commit(0x40, 5000)        # isolated break
        t.train_commit(0x40, 5008)        # stream resumes at stride 8
        entry = t.entry_for(0x40)
        assert entry.stride == 8          # never chased the break

    def test_plain_stride_table_decays_on_breaks(self):
        """Contrast: the baseline predictor pays confidence on every
        break; two-delta retains more."""
        pattern = []
        base = 0
        for chunk in range(8):            # stride runs broken every 4
            for i in range(4):
                pattern.append(base + 8 * i)
            base += 10_000
        naive = table("stride")
        robust = table("two_delta")
        train(naive, 0x40, pattern)
        train(robust, 0x40, pattern)
        naive_conf = naive.entry_for(0x40).confidence
        robust_conf = robust.entry_for(0x40).confidence
        assert robust_conf >= naive_conf

    def test_repeated_new_delta_adopted(self):
        t = table()
        train(t, 0x40, [0, 8, 16, 24])    # stride 8 established
        train(t, 0x40, [88, 152, 216])    # stride 64, repeated
        assert t.entry_for(0x40).stride == 64

    def test_commit_only_training_still_holds(self):
        from repro.pipeline.core import Core
        from repro.schemes import make_scheme
        from repro.common.config import SystemConfig
        from tests.doppelganger.test_engine import strided_loop

        cfg = SystemConfig(predictor=PredictorConfig(kind="two_delta"))
        core = Core(strided_loop(n=150), make_scheme("dom+ap"), config=cfg)
        stats = core.run()
        assert isinstance(core.stride, TwoDeltaStrideTable)
        assert core.stride.trainings == stats.committed_loads
        assert stats.coverage > 0.8


class TestEndToEnd:
    def test_two_delta_never_hurts_broken_stride_accuracy(self):
        """On the xalancbmk-style breaking-stride pattern, two-delta
        accuracy must be at least the plain table's."""
        from repro.common.config import SystemConfig
        from repro.harness.runner import run_benchmark

        plain = run_benchmark("xalancbmk", "dom+ap", warmup=1500, measure=5000)
        cfg = SystemConfig(predictor=PredictorConfig(kind="two_delta"))
        robust = run_benchmark(
            "xalancbmk", "dom+ap", config=cfg, warmup=1500, measure=5000
        )
        assert robust.stats.accuracy >= plain.stats.accuracy - 0.02
