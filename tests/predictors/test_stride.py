"""Tests for the shared stride table (prefetcher + address predictor)."""

import pytest

from repro.common.config import PredictorConfig
from repro.predictors.stride import StrideTable


def table(entries=32, ways=4, threshold=2, degree=2, distance=4) -> StrideTable:
    return StrideTable(
        PredictorConfig(
            entries=entries,
            ways=ways,
            confidence_threshold=threshold,
            prefetch_degree=degree,
            prefetch_distance=distance,
        )
    )


def train_sequence(t: StrideTable, pc: int, start: int, stride: int, count: int):
    for i in range(count):
        t.train_commit(pc, start + i * stride)


class TestTraining:
    def test_unknown_pc_predicts_nothing(self):
        assert table().predict_current(0x40) is None

    def test_confidence_gates_prediction(self):
        t = table(threshold=2)
        t.train_commit(0x40, 100)
        t.train_commit(0x40, 108)   # stride 8 observed once, conf 0->?
        assert t.predict_current(0x40) is None
        t.train_commit(0x40, 116)   # stride repeats
        t.train_commit(0x40, 124)
        assert t.predict_current(0x40) == 132

    def test_stride_change_decays_then_replaces(self):
        t = table(threshold=2)
        train_sequence(t, 0x40, 100, 8, 6)
        assert t.predict_current(0x40) == 100 + 6 * 8
        # Break the stride: confidence decays, no replacement yet.
        t.train_commit(0x40, 1000)
        entry = t.entry_for(0x40)
        assert entry.last_address == 1000
        # Keep breaking until the stride is replaced and retrained.
        train_sequence(t, 0x40, 2000, 16, 8)
        assert t.predict_current(0x40) == 2000 + 8 * 16

    def test_zero_stride_predicts_same_address(self):
        t = table()
        train_sequence(t, 0x40, 500, 0, 4)
        assert t.predict_current(0x40) == 500

    def test_negative_stride(self):
        t = table()
        train_sequence(t, 0x40, 1000, -8, 5)
        assert t.predict_current(0x40) == 1000 + 5 * (-8) & ((1 << 64) - 1)


class TestFullPCTags:
    def test_no_aliasing_between_pcs_in_same_set(self):
        """Full PC tags (paper §5.1): distinct PCs never share an entry."""
        t = table(entries=8, ways=4)
        pc_a = 0x10
        pc_b = pc_a + 8 * t.num_sets  # same set index, different PC
        train_sequence(t, pc_a, 0, 8, 4)
        train_sequence(t, pc_b, 10_000, 16, 4)
        assert t.predict_current(pc_a) == 4 * 8
        assert t.predict_current(pc_b) == 10_000 + 4 * 16

    def test_lru_eviction_within_set(self):
        t = table(entries=4, ways=2)
        set_count = t.num_sets
        pcs = [0x10 + k * set_count for k in range(3)]  # 3 PCs, 2 ways
        train_sequence(t, pcs[0], 0, 8, 3)
        train_sequence(t, pcs[1], 0, 8, 3)
        train_sequence(t, pcs[2], 0, 8, 3)  # evicts pcs[0] (LRU)
        assert t.entry_for(pcs[0]) is None
        assert t.entry_for(pcs[1]) is not None
        assert t.entry_for(pcs[2]) is not None


class TestPrefetchMode:
    def test_candidates_follow_distance_and_degree(self):
        t = table(degree=2, distance=4)
        train_sequence(t, 0x40, 0, 64, 5)
        candidates = t.prefetch_candidates(0x40, 320)
        assert candidates == [320 + 4 * 64, 320 + 5 * 64]

    def test_no_candidates_below_confidence(self):
        t = table()
        t.train_commit(0x40, 0)
        assert t.prefetch_candidates(0x40, 0) == []

    def test_zero_stride_never_prefetches(self):
        t = table()
        train_sequence(t, 0x40, 500, 0, 6)
        assert t.prefetch_candidates(0x40, 500) == []

    def test_zero_degree_disables_prefetch(self):
        t = table(degree=0)
        train_sequence(t, 0x40, 0, 64, 5)
        assert t.prefetch_candidates(0x40, 320) == []


class TestIntrospection:
    def test_occupancy(self):
        t = table()
        train_sequence(t, 0x40, 0, 8, 2)
        train_sequence(t, 0x48, 0, 8, 2)
        assert t.occupancy() == 2

    def test_training_counter(self):
        t = table()
        train_sequence(t, 0x40, 0, 8, 5)
        assert t.trainings == 5
