"""Tests for the gshare branch predictor."""

from repro.common.config import BranchPredictorConfig
from repro.predictors.branch import GShareBranchPredictor


def predictor(history_bits=8, entries=256) -> GShareBranchPredictor:
    return GShareBranchPredictor(
        BranchPredictorConfig(history_bits=history_bits, table_entries=entries)
    )


class TestPrediction:
    def test_initial_prediction_not_taken(self):
        assert predictor().predict(0x40) is False

    def test_learns_always_taken(self):
        p = predictor(history_bits=0)  # degenerate bimodal: deterministic
        for _ in range(4):
            history = p.snapshot_history()
            taken = p.predict(0x40)
            p.restore_history(history, True)
            p.train(0x40, True, history)
        assert p.predict(0x40) is True

    def test_learns_alternating_with_history(self):
        """gshare separates T/NT contexts of the same PC via history."""
        p = predictor()
        outcomes = [True, False] * 40
        correct_tail = 0
        for i, actual in enumerate(outcomes):
            history = p.snapshot_history()
            predicted = p.predict(0x40)
            if predicted != actual:
                p.restore_history(history, actual)
            p.train(0x40, actual, history)
            if i >= len(outcomes) - 10:
                correct_tail += predicted == actual
        assert correct_tail >= 9  # converged on the pattern

    def test_history_speculatively_updated(self):
        p = predictor()
        p.history = 0b1
        p.predict(0x40)
        assert p.history in (0b10, 0b11)  # shifted, outcome bit appended

    def test_restore_appends_actual_outcome(self):
        p = predictor(history_bits=4)
        snapshot = 0b0101
        p.restore_history(snapshot, True)
        assert p.history == 0b1011

    def test_counters_saturate(self):
        p = predictor()
        history = 0
        for _ in range(10):
            p.train(0x40, True, history)
        p.train(0x40, False, history)
        # One not-taken after saturation must not flip the prediction.
        p.history = history
        assert p.predict(0x40) is True

    def test_accuracy_metric(self):
        p = predictor()
        assert p.accuracy == 0.0
        p.predict(0x40)
        p.record_mispredict()
        assert p.accuracy == 0.0
        p.predict(0x40)
        assert p.accuracy == 0.5
