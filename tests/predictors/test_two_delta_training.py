"""Unit tests for ``TwoDeltaStrideTable.train_commit`` state transitions.

``tests/predictors/test_two_delta.py`` covers the table end-to-end; these
tests pin the training algorithm itself: how the pending stride is
tracked, when it is adopted, the confidence floor of 1 on adoption, and
the single-outlier resilience that distinguishes two-delta from the
classic table.
"""

from repro.common.config import PredictorConfig
from repro.predictors.stride import TwoDeltaEntry, TwoDeltaStrideTable, make_stride_table

PC = 0x40


def table(threshold=2, max_confidence=7) -> TwoDeltaStrideTable:
    return make_stride_table(
        PredictorConfig(
            entries=32,
            ways=4,
            kind="two_delta",
            confidence_threshold=threshold,
            max_confidence=max_confidence,
        )
    )


def train(t, addresses, pc=PC):
    for address in addresses:
        t.train_commit(pc, address)


class TestPendingStride:
    def test_entries_carry_pending_state(self):
        t = table()
        train(t, [0])
        entry = t.entry_for(PC)
        assert isinstance(entry, TwoDeltaEntry)
        assert entry.pending_stride == 0

    def test_pending_tracks_most_recent_delta(self):
        t = table()
        train(t, [0, 8, 16])          # stable stride 8
        t.train_commit(PC, 116)       # delta 100: pending, not predicting
        entry = t.entry_for(PC)
        assert entry.pending_stride == 100
        assert entry.stride == 8      # predicting stride untouched

    def test_pending_updates_even_on_confirming_delta(self):
        t = table()
        train(t, [0, 8, 16, 24])
        assert t.entry_for(PC).pending_stride == 8


class TestAdoption:
    def test_new_delta_twice_in_a_row_is_adopted(self):
        t = table()
        train(t, [0, 8, 16, 24])      # stride 8 established
        t.train_commit(PC, 88)        # delta 64: first observation
        assert t.entry_for(PC).stride == 8
        t.train_commit(PC, 152)       # delta 64 again: adopt
        assert t.entry_for(PC).stride == 64

    def test_interrupted_repeat_is_not_adopted(self):
        t = table()
        train(t, [0, 8, 16, 24])
        t.train_commit(PC, 88)        # delta 64
        t.train_commit(PC, 96)        # delta 8 again — 64 never repeated
        t.train_commit(PC, 160)       # delta 64 (first again)
        assert t.entry_for(PC).stride == 8

    def test_adoption_floors_confidence_at_one(self):
        """Adoption from zero confidence must leave confidence at 1, not
        -1 or 0: the new stride starts with one confirming observation."""
        t = table()
        # allocate, then two observations of the same delta: the second
        # adopts while confidence is still 0.
        train(t, [0, 8, 16])
        entry = t.entry_for(PC)
        assert entry.stride == 8
        assert entry.confidence == 1

    def test_adoption_from_high_confidence_decrements(self):
        t = table(max_confidence=7)
        train(t, [0, 8, 16, 24, 32, 40, 48])   # confidence climbs
        high = t.entry_for(PC).confidence
        assert high > 2
        t.train_commit(PC, 148)       # delta 100 (breaks: confidence -1)
        t.train_commit(PC, 248)       # delta 100 repeated: adopt
        entry = t.entry_for(PC)
        assert entry.stride == 100
        assert entry.confidence == max(high - 2, 1)

    def test_adopted_stride_predicts_with_threshold_one(self):
        t = table(threshold=1)
        train(t, [0, 8, 16])          # adoption sets confidence to 1
        assert t.predict_current(PC) == 24


class TestOutlierResilience:
    def test_single_outlier_keeps_predicting_stride(self):
        t = table()
        train(t, [0, 8, 16, 24, 32])
        t.train_commit(PC, 5000)      # isolated irregular access
        assert t.entry_for(PC).stride == 8

    def test_recovery_needs_one_confirming_access(self):
        t = table(threshold=2)
        train(t, [0, 8, 16, 24, 32])
        t.train_commit(PC, 5000)      # outlier: last_address now 5000
        t.train_commit(PC, 5008)      # stream resumes
        # Prediction is live again immediately after the resume access.
        assert t.predict_current(PC) == 5016

    def test_distinct_outliers_derail_classic_but_not_two_delta(self):
        """The contrast that motivates two-delta: once confidence reaches
        zero, the classic table *replaces* its stride with the next
        (arbitrary) delta, while two-delta demands the new delta repeat."""
        pattern = [0, 8, 16, 1016, 4016]   # two different wild deltas
        classic = make_stride_table(PredictorConfig(entries=32, ways=4, kind="stride"))
        robust = table()
        train(classic, pattern)
        train(robust, pattern)
        assert classic.entry_for(PC).stride == 3000   # chased the outlier
        assert robust.entry_for(PC).stride == 8       # held the stream

    def test_outlier_never_becomes_the_stride_without_repeat(self):
        t = table()
        train(t, [0, 8, 16, 24])
        for jump in (1000, 3000, 6000, 10_000):   # distinct wild deltas
            t.train_commit(PC, jump)
        assert t.entry_for(PC).stride == 8
