"""The differential oracle: clean on stock, loud on injected bugs."""

import pytest

from repro.common.errors import ConfigError
from repro.fuzz.differential import (
    KIND_ARCH,
    KIND_CLEAN,
    KIND_REFERENCE_LIMIT,
    commit_budget,
    matrix_modes,
    run_matrix,
)
from repro.fuzz.generator import generate_program
from repro.fuzz.mutations import MUTATIONS, make_scheme_variant
from repro.fuzz.profiles import get_profile
from repro.isa.builder import CodeBuilder

SMOKE_SCHEMES = ("unsafe", "dom+ap")


class TestMatrixModes:
    def test_full_matrix_crosses_everything(self):
        modes = matrix_modes(SMOKE_SCHEMES, "full")
        assert len(modes) == len(SMOKE_SCHEMES) * 2 * 2
        assert {m.scheme for m in modes} == set(SMOKE_SCHEMES)
        assert {m.idle_skip for m in modes} == {True, False}
        assert {m.guardrails for m in modes} == {"off", "full"}

    def test_schemes_matrix_is_one_cell_per_scheme(self):
        modes = matrix_modes(SMOKE_SCHEMES, "schemes")
        assert len(modes) == len(SMOKE_SCHEMES)
        assert all(m.idle_skip and m.guardrails == "full" for m in modes)


class TestStockSimulator:
    def test_generated_program_is_clean_full_matrix(self):
        program = generate_program(0, get_profile("default"))
        report = run_matrix(program, SMOKE_SCHEMES, matrix="full")
        assert report.kind == KIND_CLEAN
        assert report.clean
        assert len(report.executions) == len(SMOKE_SCHEMES) * 4
        assert report.divergences == []

    @pytest.mark.parametrize("name", ("branchy", "store_pressure"))
    def test_pressure_profiles_are_clean(self, name):
        program = generate_program(1, get_profile(name))
        report = run_matrix(program, SMOKE_SCHEMES, matrix="schemes")
        assert report.kind == KIND_CLEAN


class TestInjectedBugs:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutations_are_caught(self, mutation):
        program = generate_program(0, get_profile("default"))
        report = run_matrix(
            program, SMOKE_SCHEMES, matrix="schemes", mutation=mutation
        )
        assert report.kind == KIND_ARCH
        assert report.divergences

    def test_runaway_mutated_program_is_bounded(self):
        # commit-bitflip can corrupt the loop counter; the commit budget
        # turns the resulting endless loop into a fast halted=False
        # divergence instead of a hang.
        program = generate_program(1, get_profile("branchy"))
        report = run_matrix(
            program, SMOKE_SCHEMES, matrix="schemes", mutation="commit-bitflip"
        )
        assert report.kind == KIND_ARCH

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ConfigError, match="unknown mutation"):
            make_scheme_variant("dom", "not-a-mutation")


class TestReferenceLimit:
    def test_non_halting_program_is_its_own_kind(self):
        b = CodeBuilder()
        b.label("spin")
        b.jmp("spin")
        b.halt()
        report = run_matrix(
            b.build(name="spin"), SMOKE_SCHEMES, matrix="schemes"
        )
        assert report.kind == KIND_REFERENCE_LIMIT
        assert report.executions == []

    def test_commit_budget_scales_with_reference(self):
        assert commit_budget(1000) > commit_budget(10) > 0
