"""Knob profiles: validation, round-trips, and the named registry."""

import pytest

from repro.common.errors import ConfigError
from repro.fuzz.profiles import (
    FOOTPRINT_WORDS,
    PROFILES,
    FuzzProfile,
    get_profile,
    resolve_profiles,
)


class TestRegistry:
    def test_named_profiles_are_valid(self):
        for name, profile in PROFILES.items():
            assert profile.name == name
            profile.validate()  # must not raise

    def test_get_profile_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown fuzz profile"):
            get_profile("nope")

    def test_resolve_profiles_preserves_order(self):
        profiles = resolve_profiles(("chase", "default"))
        assert [p.name for p in profiles] == ["chase", "default"]


class TestKnobs:
    def test_round_trip_through_dict(self):
        for profile in PROFILES.values():
            assert FuzzProfile.from_dict(profile.to_dict()) == profile

    def test_unknown_knob_rejected(self):
        payload = get_profile("default").to_dict()
        payload["spice"] = 11
        with pytest.raises(ConfigError, match="spice"):
            FuzzProfile.from_dict(payload)

    def test_invalid_target_level_rejected(self):
        with pytest.raises(ConfigError):
            FuzzProfile(name="bad", target_level="l9").validate()

    def test_footprint_follows_target_level(self):
        for level, words in FOOTPRINT_WORDS.items():
            profile = FuzzProfile(name=f"t-{level}", target_level=level)
            assert profile.footprint_words == words

    def test_kind_weights_cover_emitters(self):
        weights = get_profile("default").kind_weights()
        assert set(weights) >= {"alu", "branch", "load", "store", "chase"}
        assert all(weight >= 0 for weight in weights.values())
