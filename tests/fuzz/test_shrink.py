"""The delta-debugging shrinker, end to end against a mutation fixture.

This is the oracle+shrinker proof the fuzzer's findings rest on: an
injected scheme bug must be caught, minimized to a handful of
instructions, and minimize to the *same* handful every time.
"""

import pytest

from repro.common.errors import ConfigError
from repro.fuzz.differential import KIND_ARCH, run_matrix
from repro.fuzz.generator import generate_program
from repro.fuzz.profiles import get_profile
from repro.fuzz.shrink import minimize, remap_instructions
from repro.isa.builder import CodeBuilder
from repro.isa.instructions import Opcode

SMOKE_SCHEMES = ("unsafe", "dom+ap")


def _mutation_predicate(mutation):
    def predicate(candidate):
        report = run_matrix(
            candidate, SMOKE_SCHEMES, matrix="schemes", mutation=mutation
        )
        return report.kind == KIND_ARCH

    return predicate


class TestRemap:
    def test_branch_targets_follow_deletions(self):
        b = CodeBuilder()
        b.beq(1, 2, 3)  # 0: branch over the next two slots
        b.nop()         # 1: will be deleted
        b.nop()         # 2
        b.addi(3, 3, 1)  # 3: branch target
        b.halt()        # 4
        program = b.build(name="remap")
        kept = [0, 2, 3, 4]
        remapped = remap_instructions(program.instructions, kept)
        # Old target 3 is at position 2 of the kept list.
        assert remapped[0].imm == 2
        assert [i.opcode for i in remapped] == [
            Opcode.BEQ, Opcode.NOP, Opcode.ADDI, Opcode.HALT,
        ]

    def test_deleted_target_maps_to_next_survivor(self):
        b = CodeBuilder()
        b.beq(1, 2, 2)
        b.nop()
        b.nop()
        b.halt()
        program = b.build(name="remap2")
        remapped = remap_instructions(program.instructions, [0, 3])
        assert remapped[0].imm == 1  # old slot 2 fell to the halt


class TestMinimize:
    def test_predicate_must_hold_on_entry(self):
        program = generate_program(0, get_profile("default"))
        with pytest.raises(ConfigError, match="predicate does not hold"):
            minimize(program, lambda _: False)

    def test_mutation_fixture_minimizes_small_and_deterministic(self):
        """Satellite requirement: an injected scheme bug is caught by the
        oracle and minimized to <= 10 instructions, with two runs of the
        same seed producing identical minimized listings."""
        program = generate_program(0, get_profile("default"))
        predicate = _mutation_predicate("commit-bitflip")
        assert predicate(program), "oracle must catch the injected bug"

        first = minimize(program, predicate)
        second = minimize(
            generate_program(0, get_profile("default")), predicate
        )
        assert len(first.instructions) <= 10
        assert first.disassemble() == second.disassemble()
        assert first.initial_memory == second.initial_memory
        assert first.initial_registers == second.initial_registers
        # The minimized program still fails the same way...
        assert predicate(first)
        # ... and is clean on the stock simulator.
        stock = run_matrix(first, SMOKE_SCHEMES, matrix="schemes")
        assert stock.clean
