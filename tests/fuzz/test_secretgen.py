"""Secret-gadget generator: determinism, template coverage, contracts."""

from repro.analysis.specflow import analyze_program
from repro.analysis.specflow.model import VERDICT_LEAK, VERDICT_SAFE
from repro.fuzz.secretgen import TEMPLATES, generate_secret_case


class TestDeterminism:
    def test_same_seed_same_case(self):
        a = generate_secret_case(7)
        b = generate_secret_case(7)
        assert a.name == b.name and a.secrets == b.secrets
        pa = a.build(a.secrets[0]).program
        pb = b.build(b.secrets[0]).program
        assert pa.to_dict() == pb.to_dict()

    def test_build_is_pure_in_the_secret(self):
        case = generate_secret_case(3)
        low = case.build(case.secrets[0]).program
        high = case.build(case.secrets[1]).program
        assert [i.disassemble() for i in low.instructions] == [
            i.disassemble() for i in high.instructions
        ]
        assert low.secret_regions == high.secret_regions

    def test_seeds_cycle_through_all_templates(self):
        templates = {generate_secret_case(seed).template for seed in range(5)}
        assert templates == set(TEMPLATES)


class TestContracts:
    def test_every_case_declares_a_secret_region(self):
        for seed in range(10):
            case = generate_secret_case(seed)
            program = case.build(case.secrets[0]).program
            assert program.secret_regions, case.name
            assert case.secrets[0] != case.secrets[1]

    def test_case_names_embed_template_and_seed(self):
        case = generate_secret_case(12)
        assert case.template in case.name
        assert case.name.endswith("_12")


class TestStaticExpectations:
    def test_benign_template_is_safe_everywhere(self):
        case = generate_secret_case(0)
        assert case.template == "benign"
        report = analyze_program(case.build(case.secrets[0]).program)
        assert all(v.verdict == VERDICT_SAFE for v in report.verdicts.values())

    def test_arch_transmit_template_leaks_everywhere(self):
        case = generate_secret_case(1)
        assert case.template == "arch_transmit"
        report = analyze_program(case.build(case.secrets[0]).program)
        assert all(v.verdict == VERDICT_LEAK for v in report.verdicts.values())

    def test_mini_spectre_discriminates_schemes(self):
        case = generate_secret_case(2)
        assert case.template == "mini_spectre"
        report = analyze_program(case.build(case.secrets[0]).program)
        assert report.verdict("unsafe") == VERDICT_LEAK
        assert report.verdict("dom+ap") == VERDICT_SAFE

    def test_transient_read_only_is_safe_under_taint_gating(self):
        case = generate_secret_case(4)
        assert case.template == "transient_read_only"
        report = analyze_program(case.build(case.secrets[0]).program)
        for label in ("nda", "stt", "dom", "dom+ap"):
            assert report.verdict(label) == VERDICT_SAFE, label
