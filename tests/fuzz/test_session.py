"""Campaign plumbing: jobs, repro files, manifest, and replay."""

import json

from repro.fuzz.corpus import ReproFile
from repro.fuzz.differential import KIND_ARCH, KIND_CLEAN
from repro.fuzz.profiles import get_profile, resolve_profiles
from repro.fuzz.session import (
    FuzzJob,
    FuzzSession,
    execute_fuzz_job,
    fuzz_job_fields,
    replay_manifest,
)

SMOKE_SCHEMES = ("unsafe", "dom+ap")


def _job(seed=0, mutation=None, minimize=True):
    from repro.common.config import small_config

    return FuzzJob.build(
        seed,
        get_profile("default"),
        SMOKE_SCHEMES,
        "schemes",
        small_config(),
        mutation=mutation,
        minimize_findings=minimize,
    )


class TestFuzzJob:
    def test_spec_round_trip(self):
        job = _job(seed=9, mutation="dropped-store")
        spec = job.spec()
        assert spec["kind"] == "fuzz"
        assert FuzzJob.from_spec(spec) == job

    def test_spec_is_json_serializable(self):
        restored = FuzzJob.from_spec(json.loads(json.dumps(_job().spec())))
        assert restored == _job()

    def test_label_and_fields(self):
        job = _job(seed=4)
        assert job.label == "fuzz/default/seed4"
        fields = fuzz_job_fields(job)
        assert fields["benchmark"] == job.label
        assert fields["spec"]["seed"] == 4


class TestWorker:
    def test_clean_job(self):
        outcome = execute_fuzz_job(_job())
        assert outcome["ok"]
        assert outcome["result"]["kind"] == KIND_CLEAN
        assert "repro" not in outcome["result"]

    def test_finding_carries_minimized_repro(self):
        outcome = execute_fuzz_job(_job(mutation="commit-bitflip"))
        assert outcome["ok"]
        result = outcome["result"]
        assert result["kind"] == KIND_ARCH
        repro = result["repro"]
        assert repro["mutation"] == "commit-bitflip"
        assert 0 < repro["minimized_instructions"] <= 10
        assert repro["minimized_instructions"] < repro["original_instructions"]


class TestSession:
    def test_clean_campaign(self, tmp_path):
        session = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
        )
        summary = session.run([0, 1], resolve_profiles(("default",)))
        assert summary.ok
        assert summary.programs == 2
        assert summary.clean == 2
        manifest = json.loads((tmp_path / "failure_manifest.json").read_text())
        assert manifest["failures"] == []

    def test_findings_write_repro_and_manifest(self, tmp_path):
        session = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
            mutation="commit-bitflip",
        )
        summary = session.run([0], resolve_profiles(("default",)))
        assert not summary.ok
        (finding,) = summary.findings
        assert finding.kind == KIND_ARCH
        assert finding.repro_path is not None and finding.repro_path.exists()

        repro = ReproFile.load(finding.repro_path)
        assert repro.mutation == "commit-bitflip"
        assert not repro.config_drifted()

        manifest = json.loads((tmp_path / "failure_manifest.json").read_text())
        (entry,) = manifest["failures"]
        assert entry["spec"]["kind"] == "fuzz"
        assert entry["spec"]["seed"] == 0
        assert entry["replay"].startswith("python -m repro fuzz --replay ")

    def test_manifest_replays(self, tmp_path):
        session = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
            mutation="commit-bitflip",
            minimize_findings=False,
        )
        session.run([0], resolve_profiles(("default",)))
        replayed = replay_manifest(tmp_path / "failure_manifest.json")
        ((label, report),) = replayed
        assert label == "fuzz/default/seed0"
        assert report.kind == KIND_ARCH


class TestResume:
    def test_interrupted_campaign_resumes_from_store(self, tmp_path):
        """A campaign killed mid-flight resumes without re-running the
        matrix for already-resolved programs (store hit counters)."""
        import pytest

        from repro.harness.chaos import ChaosEngine, ChaosInterrupt, FaultPlan

        chaos = ChaosEngine(FaultPlan(seed=0, interrupt_after=2))
        first = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
            chaos=chaos,
        )
        with pytest.raises(ChaosInterrupt):
            first.run([0, 1, 2, 3], resolve_profiles(("default",)))

        resumed = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
            resume=True,
        )
        summary = resumed.run([0, 1, 2, 3], resolve_profiles(("default",)))
        assert summary.ok
        assert summary.programs == 4
        assert summary.store_hits == 2  # resolved before the kill
        assert resumed.store.counters()["hits"] == 2
        assert "resumed from store" in summary.render()

    def test_findings_are_replayed_on_resume(self, tmp_path):
        """Persisted verdicts include findings: a resumed campaign reports
        them again without re-running the matrix."""
        first = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
            mutation="commit-bitflip",
            minimize_findings=False,
        )
        summary = first.run([0], resolve_profiles(("default",)))
        assert len(summary.findings) == 1

        resumed = FuzzSession(
            schemes=SMOKE_SCHEMES,
            matrix="schemes",
            jobs=1,
            repro_dir=tmp_path,
            mutation="commit-bitflip",
            minimize_findings=False,
            resume=True,
        )
        replay = resumed.run([0], resolve_profiles(("default",)))
        assert replay.store_hits == 1
        assert len(replay.findings) == 1
        assert replay.findings[0].kind == summary.findings[0].kind
