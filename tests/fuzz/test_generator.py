"""Generated programs: deterministic, well-formed, and terminating."""

import pytest

from repro.fuzz.generator import generation_rng, generate_program
from repro.fuzz.profiles import PROFILES, get_profile
from repro.isa.instructions import Opcode
from repro.oracle import interpret_reference


class TestDeterminism:
    def test_same_seed_same_program(self):
        for profile in PROFILES.values():
            first = generate_program(7, profile)
            second = generate_program(7, profile)
            assert first.disassemble() == second.disassemble()
            assert first.initial_memory == second.initial_memory
            assert first.initial_registers == second.initial_registers

    def test_different_seeds_differ(self):
        profile = get_profile("default")
        a = generate_program(0, profile)
        b = generate_program(1, profile)
        assert a.disassemble() != b.disassemble()

    def test_rng_streams_are_profile_scoped(self):
        # The stream is seeded by (profile name, seed) as a *string*, so
        # it never depends on interpreter hash randomization and two
        # profiles never share a stream for the same seed.
        a = generation_rng(3, get_profile("default")).random()
        b = generation_rng(3, get_profile("branchy")).random()
        assert a != b
        assert (
            generation_rng(3, get_profile("default")).random() == a
        )


class TestShape:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_builds_and_ends_with_halt(self, name):
        program = generate_program(11, get_profile(name))
        assert program.instructions[-1].opcode is Opcode.HALT
        assert program.name == f"fuzz-{name}-11"

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_terminates_in_reference_interpreter(self, name):
        program = generate_program(5, get_profile(name))
        result = interpret_reference(program)
        assert result.halted
        assert result.instructions_executed > 0

    def test_footprint_matches_profile(self):
        program = generate_program(2, get_profile("chase"))
        assert len(program.initial_memory) >= get_profile(
            "chase"
        ).footprint_words
