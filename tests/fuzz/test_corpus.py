"""The checked-in regression corpus, replayed forever.

Every corpus entry was born from a fuzz finding (here: injected-bug
self-tests).  Each must still (a) reproduce its recorded verdict when
the recorded mutation is re-injected and (b) come back clean on the
stock simulator — (b) is the actual regression guarantee, (a) proves the
file is a faithful repro rather than a stale artifact.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import ReproFile, corpus_entries
from repro.fuzz.differential import KIND_CLEAN

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = corpus_entries(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 2


def test_missing_directory_is_empty_corpus(tmp_path):
    assert corpus_entries(tmp_path / "nope") == []


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
class TestCorpusEntry:
    def test_loads_and_is_consistent(self, path):
        repro = ReproFile.load(path)
        assert not repro.config_drifted()
        assert repro.minimized_instructions == len(
            repro.build_program().instructions
        )
        assert repro.listing == repro.build_program().disassemble()

    def test_stock_simulator_is_clean(self, path):
        repro = ReproFile.load(path)
        report = repro.replay(mutation=None)
        assert report.kind == KIND_CLEAN, report.summary()

    def test_recorded_mutation_reproduces(self, path):
        repro = ReproFile.load(path)
        assert repro.mutation is not None
        report = repro.replay()
        assert report.kind == repro.kind, report.summary()
