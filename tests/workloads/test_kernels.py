"""Tests for the workload kernel generators."""

import pytest

from repro.common.errors import ConfigError
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.kernels import (
    KERNELS,
    branchy_kernel,
    build_kernel,
    gather_kernel,
    hash_probe_kernel,
    pointer_chase_kernel,
    stencil_kernel,
    stream_kernel,
)


def run_briefly(program, scheme="unsafe", instructions=3000):
    core = Core(program, make_scheme(scheme))
    stats = core.run(max_instructions=instructions)
    return core, stats


class TestKernelExecution:
    @pytest.mark.parametrize("kind", sorted(KERNELS))
    def test_kernel_runs_and_commits(self, kind):
        program = build_kernel(kind, iterations=1 << 20, seed=1)
        _, stats = run_briefly(program)
        assert stats.committed_instructions >= 3000
        assert stats.committed_loads > 0

    @pytest.mark.parametrize("kind", sorted(KERNELS))
    def test_kernel_halts_when_iterations_finite(self, kind):
        program = build_kernel(kind, iterations=40, seed=1)
        core = Core(program, make_scheme("unsafe"))
        core.run()
        assert core.halted

    @pytest.mark.parametrize("kind", sorted(KERNELS))
    def test_kernel_matches_interpreter(self, kind):
        program = build_kernel(kind, iterations=60, seed=2)
        reference = program.interpret()
        core = Core(program, make_scheme("dom+ap"))
        core.run()
        assert core.arch.read_mem(8) == reference.state.read_mem(8)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            build_kernel("fft")


class TestKernelCharacteristics:
    def test_stream_is_highly_predictable(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12, seed=3)
        core, stats = run_briefly(program, "dom+ap", 6000)
        assert stats.coverage > 0.9
        assert stats.accuracy > 0.9

    def test_shuffled_pointer_chase_defeats_predictor(self):
        program = pointer_chase_kernel(
            iterations=1 << 20, nodes=1 << 12, sequential_fraction=0.0, seed=3
        )
        core, stats = run_briefly(program, "dom+ap", 5000)
        assert stats.coverage < 0.35

    def test_sequential_pointer_chase_predictable(self):
        program = pointer_chase_kernel(
            iterations=1 << 20, nodes=1 << 12, sequential_fraction=1.0, seed=3
        )
        core, stats = run_briefly(program, "dom+ap", 5000)
        assert stats.accuracy > 0.6

    def test_gather_regularity_controls_accuracy(self):
        regular = gather_kernel(
            iterations=1 << 20, index_words=1 << 10, data_words=1 << 12,
            index_regularity=1.0, seed=4,
        )
        irregular = gather_kernel(
            iterations=1 << 20, index_words=1 << 10, data_words=1 << 12,
            index_regularity=0.0, seed=4,
        )
        _, stats_reg = run_briefly(regular, "stt+ap", 5000)
        _, stats_irr = run_briefly(irregular, "stt+ap", 5000)
        assert stats_reg.accuracy > stats_irr.accuracy

    def test_branchy_odd_fraction_controls_mispredicts(self):
        tame = branchy_kernel(iterations=1 << 20, odd_fraction=0.02, seed=5)
        wild = branchy_kernel(iterations=1 << 20, odd_fraction=0.5, seed=5)
        _, stats_tame = run_briefly(tame, "unsafe", 5000)
        _, stats_wild = run_briefly(wild, "unsafe", 5000)
        assert stats_wild.branch_mispredictions > stats_tame.branch_mispredictions * 2

    def test_hash_probe_broken_stride_lowers_accuracy(self):
        stable = hash_probe_kernel(
            iterations=1 << 20, table_words=1 << 12, key_words=1 << 10,
            broken_stride_period=0, seed=6,
        )
        breaking = hash_probe_kernel(
            iterations=1 << 20, table_words=1 << 12, key_words=1 << 10,
            broken_stride_period=4, seed=6,
        )
        _, stats_stable = run_briefly(stable, "dom+ap", 5000)
        _, stats_breaking = run_briefly(breaking, "dom+ap", 5000)
        # Random probes yield few confident (wrong) predictions; the
        # breaking-stride pattern yields confident-but-often-wrong ones.
        assert stats_breaking.dl_wrong > stats_stable.dl_wrong

    def test_stencil_emits_stores(self):
        program = stencil_kernel(iterations=1 << 20, seed=7)
        _, stats = run_briefly(program, "unsafe", 4000)
        assert stats.committed_stores > 0

    def test_dependent_check_keeps_shadows_open(self):
        """The load-dependent branch should visibly hurt DoM on a
        missing stream — that's its entire purpose."""
        checked = stream_kernel(
            iterations=1 << 20, footprint_words=1 << 18,
            dependent_check=True, odd_fraction=0.02, seed=8,
        )
        unchecked = stream_kernel(
            iterations=1 << 20, footprint_words=1 << 18,
            dependent_check=False, seed=8,
        )
        _, dom_checked = run_briefly(checked, "dom", 5000)
        _, dom_unchecked = run_briefly(unchecked, "dom", 5000)
        assert dom_checked.dom_delayed_misses > dom_unchecked.dom_delayed_misses

    def test_check_period_must_be_power_of_two(self):
        with pytest.raises(ConfigError, match="power of two"):
            stream_kernel(dependent_check=True, check_period=3)

    def test_footprint_must_be_power_of_two(self):
        with pytest.raises(ConfigError, match="power of two"):
            stream_kernel(footprint_words=1000)

    def test_seeds_are_reproducible(self):
        a = gather_kernel(iterations=100, seed=42)
        b = gather_kernel(iterations=100, seed=42)
        assert a.instructions == b.instructions
        assert a.initial_memory == b.initial_memory


class TestScatterKernel:
    def test_scatter_matches_interpreter(self):
        from repro.workloads.kernels import scatter_kernel

        program = scatter_kernel(iterations=80, seed=3)
        reference = program.interpret().state.read_mem(8)
        core, _ = run_briefly(program, "stt+ap", instructions=10**9)
        assert core.halted
        assert core.arch.read_mem(8) == reference

    def test_scatter_casts_store_shadows(self):
        """The scatter store's late-resolving address must actually keep
        the M-shadow machinery busy."""
        from repro.pipeline.core import Core
        from repro.schemes import make_scheme
        from repro.workloads.kernels import scatter_kernel

        core = Core(scatter_kernel(iterations=1 << 20, seed=3), make_scheme("dom"))
        saw_store_shadow = False
        for _ in range(600):
            core.step()
            if core.shadows.unresolved_stores() > 0:
                saw_store_shadow = True
                break
        assert saw_store_shadow

    def test_readback_generates_forwarding_or_violations(self):
        from repro.workloads.kernels import scatter_kernel

        program = scatter_kernel(iterations=1 << 20, readback=True, seed=3)
        _, stats = run_briefly(program, "unsafe", 6000)
        assert stats.store_to_load_forwards + stats.squashed_instructions > 0

    def test_readback_off_removes_violation_storms(self):
        from repro.workloads.kernels import scatter_kernel

        noisy = scatter_kernel(iterations=1 << 20, readback=True, seed=3)
        quiet = scatter_kernel(iterations=1 << 20, readback=False, seed=3)
        _, noisy_stats = run_briefly(noisy, "unsafe", 5000)
        _, quiet_stats = run_briefly(quiet, "unsafe", 5000)
        assert quiet_stats.squashed_instructions <= noisy_stats.squashed_instructions
