"""Tests for the SPEC stand-in profile registry."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.profiles import (
    ALL_PROFILES,
    PROFILES_BY_NAME,
    SPEC2006_PROFILES,
    SPEC2017_PROFILES,
    benchmark_names,
    build_workload,
    get_profile,
)


class TestRegistry:
    def test_suites_are_disjoint_and_complete(self):
        names_2006 = set(benchmark_names("spec2006"))
        names_2017 = set(benchmark_names("spec2017"))
        assert not names_2006 & names_2017
        assert names_2006 | names_2017 == set(benchmark_names("all"))

    def test_paper_benchmarks_present(self):
        """Every benchmark the paper's evaluation text names must exist."""
        for name in (
            "bzip2", "gcc", "mcf", "hmmer", "sjeng", "libquantum", "astar",
            "gromacs", "GemsFDTD", "omnetpp_s", "xalancbmk_s",
            "exchange2_s", "wrf_s",
        ):
            assert name in PROFILES_BY_NAME

    def test_suite_sizes(self):
        assert len(SPEC2006_PROFILES) >= 12
        assert len(SPEC2017_PROFILES) >= 10
        assert len(ALL_PROFILES) >= 24

    def test_every_profile_has_expectation(self):
        for profile in ALL_PROFILES:
            assert profile.expectation, f"{profile.name} lacks an expectation note"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            get_profile("povray")
        with pytest.raises(ConfigError, match="unknown suite"):
            benchmark_names("spec2000")

    def test_unique_seeds(self):
        seeds = [p.params.get("seed") for p in ALL_PROFILES]
        assert len(seeds) == len(set(seeds)), "profiles must not share seeds"


class TestProfilePrograms:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_profile_builds(self, profile):
        program = profile.build()
        assert len(program) > 5
        assert program.name == profile.name

    def test_build_workload_shortcut(self):
        assert build_workload("mcf").name == "mcf"

    def test_builds_are_deterministic(self):
        first = build_workload("libquantum")
        second = build_workload("libquantum")
        assert first.instructions == second.instructions
        assert first.initial_memory == second.initial_memory
