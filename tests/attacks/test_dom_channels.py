"""Figure 4: implicit channels through Doppelganger Loads under DoM.

The paper (§4.6) shows that naively adding address-predicted loads to DoM
opens implicit channels — a secret-dependent branch steering which
doppelganger's miss appears — and closes them with two rules: in-order
branch resolution and delayed re-issue of mispredicted doppelgangers.
These tests check both directions: the full schemes are non-interfering,
and the deliberately weakened variant (in-order rule removed) leaks.
"""

import pytest

from repro.attacks import (
    InsecureDoMAPWithoutInOrderBranches,
    dom_implicit_channel,
    noninterference_check,
    snapshots_equal,
)


def check(scheme, register_secret: bool):
    return noninterference_check(
        lambda secret: dom_implicit_channel(secret, register_secret=register_secret),
        scheme,
        secrets=(0, 1),
    )


class TestFigure4aSpeculativeSecret:
    """The secret is loaded speculatively from an L1-resident line."""

    def test_unsafe_leaks(self):
        assert not snapshots_equal(check("unsafe", False))

    @pytest.mark.parametrize(
        "scheme", ["dom", "dom+ap", "stt", "stt+ap", "nda", "nda+ap"]
    )
    def test_secure_schemes_non_interfering(self, scheme):
        assert snapshots_equal(check(scheme, False)), f"{scheme} leaked"

    def test_dom_ap_without_in_order_branches_leaks(self):
        """Removing §4.6's in-order rule lets the secret-dependent branch
        resolve transiently, steering a doppelganger access — visible in
        the per-line access counts."""
        snaps = noninterference_check(
            lambda secret: dom_implicit_channel(secret, register_secret=False),
            InsecureDoMAPWithoutInOrderBranches(address_prediction=True),
            secrets=(0, 1),
        )
        assert not snapshots_equal(snaps)


class TestFigure4bRegisterSecret:
    """The secret sits in a register, loaded before any speculation.

    DoM's threat model protects register secrets; NDA-P's explicitly does
    not (§3.1) — the tests assert exactly that split.
    """

    @pytest.mark.parametrize("scheme", ["dom", "dom+ap"])
    def test_dom_protects_register_secrets(self, scheme):
        assert snapshots_equal(check(scheme, True)), f"{scheme} leaked"

    def test_unsafe_leaks(self):
        assert not snapshots_equal(check("unsafe", True))

    @pytest.mark.parametrize("scheme", ["nda", "nda+ap"])
    def test_nda_does_not_protect_register_secrets(self, scheme):
        """Register secrets are out of NDA-P's threat model: the leak is
        expected, and adding Doppelganger Loads does not widen it beyond
        what plain NDA-P already exposes (threat-model transparency)."""
        assert not snapshots_equal(check(scheme, True))

    def test_stt_registers_out_of_scope_but_race_lost_here(self):
        """STT's threat model also excludes register secrets; in this
        model the extra taint-deferred resolutions happen to push the
        transient chain past the squash, so no leak is observed.  The
        assertion documents observed behaviour, not a protection claim."""
        assert snapshots_equal(check("stt", True))

    def test_insecure_variant_leaks(self):
        snaps = noninterference_check(
            lambda secret: dom_implicit_channel(secret, register_secret=True),
            InsecureDoMAPWithoutInOrderBranches(address_prediction=True),
            secrets=(0, 1),
        )
        assert not snapshots_equal(snaps)


class TestObservationApparatus:
    def test_noninterference_requires_observed_addresses(self):
        from repro.attacks.gadgets import Gadget
        from repro.isa.assembler import assemble
        from repro.isa.program import Program

        bare = Gadget(program=Program(assemble("halt")))
        with pytest.raises(ValueError, match="no observed addresses"):
            noninterference_check(lambda secret: bare, "unsafe", secrets=(0,))

    def test_snapshots_equal_on_identical_views(self):
        assert snapshots_equal({0: {1: 1}, 1: {1: 1}})
        assert not snapshots_equal({0: {1: 1}, 1: {1: None}})
