"""The full gadget x scheme verdict matrix, pinned cell by cell.

Every corpus gadget is judged under every scheme label by both judges —
the static specflow analyzer and the dynamic noninterference oracle —
and each cell is asserted against the expectation pinned in
:data:`repro.attacks.corpus.ATTACK_CORPUS`.  A change to a scheme, the
analyzer, or the simulator that moves any cell fails here with the
exact (gadget, scheme) coordinate.
"""

import pytest

from repro.analysis.specflow import analyze_program
from repro.analysis.specflow.differential import dynamic_verdict
from repro.attacks.corpus import (
    ATTACK_CORPUS,
    CORPUS_BY_NAME,
    CORPUS_SCHEME_LABELS,
)

CELLS = [
    (entry.name, label)
    for entry in ATTACK_CORPUS
    for label in CORPUS_SCHEME_LABELS
]


@pytest.fixture(scope="module")
def static_reports():
    """One static analysis per gadget, shared across the matrix."""
    return {
        entry.name: analyze_program(entry.build(entry.secrets[0]).program)
        for entry in ATTACK_CORPUS
    }


class TestPins:
    def test_every_cell_has_expectations_on_both_sides(self):
        for entry in ATTACK_CORPUS:
            for label in CORPUS_SCHEME_LABELS:
                assert label in entry.expected_static, (entry.name, label)
                assert label in entry.expected_dynamic, (entry.name, label)

    def test_matrix_covers_all_scheme_labels(self):
        # 4 gadgets x 11 scheme configurations.
        assert len(CELLS) == len(ATTACK_CORPUS) * 11


@pytest.mark.parametrize("gadget,label", CELLS)
class TestStaticMatrix:
    def test_static_verdict(self, static_reports, gadget, label):
        entry = CORPUS_BY_NAME[gadget]
        assert static_reports[gadget].verdict(label) == entry.expected_static[label]


@pytest.mark.parametrize("gadget,label", CELLS)
class TestDynamicMatrix:
    def test_dynamic_verdict(self, gadget, label):
        entry = CORPUS_BY_NAME[gadget]
        observed = dynamic_verdict(entry.build, label, entry.secrets)
        assert observed == entry.expected_dynamic[label]


class TestSoundnessInclusion:
    def test_no_pinned_cell_is_statically_safe_but_dynamically_leaky(self):
        from repro.analysis.specflow.model import VERDICT_SAFE
        from repro.attacks.corpus import DYNAMIC_LEAK

        for entry in ATTACK_CORPUS:
            for label in CORPUS_SCHEME_LABELS:
                if entry.expected_static[label] == VERDICT_SAFE:
                    assert entry.expected_dynamic[label] != DYNAMIC_LEAK, (
                        entry.name,
                        label,
                    )
