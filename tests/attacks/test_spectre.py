"""Spectre v1 (the universal read gadget) against every configuration.

These tests are the executable form of the paper's security claims: the
unsafe baseline leaks; NDA-P, STT, and DoM block the leak; and adding
Doppelganger Loads never re-opens it (threat-model transparency, §4).
"""

import pytest

from repro.attacks import run_attack, spectre_v1
from repro.attacks.gadgets import PROBE_BASE

SECURE_SCHEMES = ("nda", "stt", "dom", "nda+ap", "stt+ap", "dom+ap")


class TestUnsafeBaseline:
    def test_baseline_leaks_secret(self):
        outcome = run_attack(spectre_v1(secret_value=5), "unsafe")
        assert outcome.leaked
        assert outcome.inferred == 5

    def test_baseline_with_ap_still_leaks(self):
        """Address prediction neither helps nor hinders an unsafe core."""
        outcome = run_attack(spectre_v1(secret_value=5), "unsafe+ap")
        assert outcome.leaked

    @pytest.mark.parametrize("secret", [1, 3, 7, 11, 15])
    def test_baseline_leaks_arbitrary_secrets(self, secret):
        outcome = run_attack(spectre_v1(secret_value=secret), "unsafe")
        assert outcome.inferred == secret

    def test_training_noise_confined_to_line_zero(self):
        outcome = run_attack(spectre_v1(secret_value=9), "unsafe")
        assert set(outcome.resident_values) == {0, 9}


class TestSecureSchemes:
    @pytest.mark.parametrize("scheme", SECURE_SCHEMES)
    def test_scheme_blocks_universal_read(self, scheme):
        outcome = run_attack(spectre_v1(secret_value=5), scheme)
        assert not outcome.leaked, f"{scheme} leaked the secret"
        assert outcome.inferred is None

    @pytest.mark.parametrize("scheme", ("nda", "stt", "dom"))
    def test_doppelganger_is_threat_model_transparent(self, scheme):
        """§4.2: adding address prediction must not introduce a leak the
        base scheme blocks — for any secret value."""
        for secret in (2, 6, 13):
            base = run_attack(spectre_v1(secret_value=secret), scheme)
            with_ap = run_attack(spectre_v1(secret_value=secret), f"{scheme}+ap")
            assert not base.leaked
            assert not with_ap.leaked

    @pytest.mark.parametrize("scheme", SECURE_SCHEMES)
    def test_probe_array_residency_secret_independent(self, scheme):
        """Stronger than 'not inferred': the set of resident probe lines
        must not vary with the secret at all."""
        residents = {
            secret: tuple(run_attack(spectre_v1(secret_value=secret), scheme).resident_values)
            for secret in (3, 12)
        }
        assert residents[3] == residents[12]


class TestGadgetConstruction:
    def test_secret_value_range_checked(self):
        with pytest.raises(ValueError):
            spectre_v1(secret_value=0)
        with pytest.raises(ValueError):
            spectre_v1(secret_value=16)

    def test_gadget_program_interprets_cleanly(self):
        """The gadget must be architecturally benign: the in-order
        interpreter never touches the probe array's secret line."""
        gadget = spectre_v1(secret_value=5)
        result = gadget.program.interpret()
        secret_probe_word = PROBE_BASE + 5 * 64
        assert secret_probe_word not in result.state.memory
