"""Threat-model transparency, swept systematically (§4's headline claim).

For every (gadget × scheme) combination: if the base scheme is leak-free,
the scheme with Doppelganger Loads must be leak-free too.  This is the
property that makes the optimization deployable — it can be bolted onto
any of the three schemes without re-auditing their threat models.
"""

import pytest

from repro.attacks import (
    dom_implicit_channel,
    noninterference_check,
    run_attack,
    snapshots_equal,
    spectre_v1,
)

BASE_SCHEMES = ("nda", "stt", "dom")


class TestSpectreTransparency:
    @pytest.mark.parametrize("scheme", BASE_SCHEMES)
    @pytest.mark.parametrize("secret", (4, 10))
    def test_ap_never_reopens_spectre(self, scheme, secret):
        base = run_attack(spectre_v1(secret_value=secret), scheme)
        ap = run_attack(spectre_v1(secret_value=secret), f"{scheme}+ap")
        assert not base.leaked
        assert not ap.leaked

    @pytest.mark.parametrize("scheme", BASE_SCHEMES)
    def test_ap_observable_state_matches_base_claims(self, scheme):
        """With AP, residency may legitimately differ from the base run
        (doppelgangers fetch lines) — but it must still be independent of
        the secret."""
        residents = {}
        for secret in (3, 13):
            outcome = run_attack(spectre_v1(secret_value=secret), f"{scheme}+ap")
            residents[secret] = tuple(outcome.resident_values)
        assert residents[3] == residents[13]


class TestFigure4Transparency:
    @pytest.mark.parametrize("scheme", BASE_SCHEMES)
    def test_speculative_secret_gadget(self, scheme):
        base = snapshots_equal(
            noninterference_check(
                lambda s: dom_implicit_channel(s), scheme, secrets=(0, 1)
            )
        )
        with_ap = snapshots_equal(
            noninterference_check(
                lambda s: dom_implicit_channel(s), f"{scheme}+ap", secrets=(0, 1)
            )
        )
        # Transparency: AP may not turn a non-leaking scheme leaking.
        if base:
            assert with_ap, f"{scheme}+ap leaks where {scheme} does not"

    @pytest.mark.parametrize("scheme", BASE_SCHEMES)
    def test_register_secret_gadget(self, scheme):
        base = snapshots_equal(
            noninterference_check(
                lambda s: dom_implicit_channel(s, register_secret=True),
                scheme,
                secrets=(0, 1),
            )
        )
        with_ap = snapshots_equal(
            noninterference_check(
                lambda s: dom_implicit_channel(s, register_secret=True),
                f"{scheme}+ap",
                secrets=(0, 1),
            )
        )
        if base:
            assert with_ap, f"{scheme}+ap leaks where {scheme} does not"


class TestPerformanceSecurityNoTradeoff:
    def test_attack_blocked_regardless_of_predictor_quality(self):
        """Transparency must not depend on predictor configuration: even
        an eager (threshold-0) predictor stays safe."""
        from dataclasses import replace

        from repro.attacks.harness import attack_config

        config = attack_config()
        eager = replace(
            config, predictor=replace(config.predictor, confidence_threshold=0)
        )
        for scheme in ("nda+ap", "stt+ap", "dom+ap"):
            outcome = run_attack(spectre_v1(secret_value=6), scheme, config=eager)
            assert not outcome.leaked, scheme

    def test_attack_blocked_with_two_delta_predictor(self):
        from dataclasses import replace

        from repro.attacks.harness import attack_config

        config = attack_config()
        two_delta = replace(
            config, predictor=replace(config.predictor, kind="two_delta")
        )
        for scheme in ("nda+ap", "stt+ap", "dom+ap"):
            outcome = run_attack(spectre_v1(secret_value=6), scheme, config=two_delta)
            assert not outcome.leaked, scheme
