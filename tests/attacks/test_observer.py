"""Tests for the flush+probe cache observer."""

import pytest

from repro.attacks.observer import PROBE_LINE_STRIDE, CacheObserver
from repro.common.config import MemoryConfig
from repro.common.stats import SimStats
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(MemoryConfig(), SimStats())


def observer(hierarchy, base=0x40000, values=16):
    return CacheObserver(hierarchy, base, values=values)


class TestResidency:
    def test_empty_cache_nothing_resident(self, hierarchy):
        assert observer(hierarchy).resident_values() == []

    def test_detects_filled_lines(self, hierarchy):
        obs = observer(hierarchy)
        hierarchy.warm([obs.address_of(3), obs.address_of(9)])
        assert obs.resident_values() == [3, 9]

    def test_address_mapping_uses_line_stride(self, hierarchy):
        obs = observer(hierarchy)
        assert obs.address_of(1) - obs.address_of(0) == PROBE_LINE_STRIDE

    def test_observation_is_non_destructive(self, hierarchy):
        obs = observer(hierarchy)
        hierarchy.warm([obs.address_of(5)])
        before = hierarchy.stats.l1_accesses
        obs.resident_values()
        obs.snapshot([obs.address_of(5)])
        assert hierarchy.stats.l1_accesses == before


class TestInference:
    def test_single_resident_line_is_the_secret(self, hierarchy):
        obs = observer(hierarchy)
        hierarchy.warm([obs.address_of(7)])
        assert obs.infer_secret() == 7

    def test_training_noise_excluded(self, hierarchy):
        obs = observer(hierarchy)
        hierarchy.warm([obs.address_of(0), obs.address_of(7)])
        assert obs.infer_secret(exclude=(0,)) == 7

    def test_ambiguity_yields_none(self, hierarchy):
        obs = observer(hierarchy)
        hierarchy.warm([obs.address_of(3), obs.address_of(4)])
        assert obs.infer_secret() is None

    def test_nothing_resident_yields_none(self, hierarchy):
        assert observer(hierarchy).infer_secret() is None

    def test_snapshot_reports_levels(self, hierarchy):
        obs = observer(hierarchy)
        address = obs.address_of(2)
        hierarchy.warm([address])
        view = obs.snapshot([address, obs.address_of(3)])
        assert view[address] == 1
        assert view[obs.address_of(3)] is None
