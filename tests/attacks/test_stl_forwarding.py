"""Figure 3 / §4.4: doppelgangers and store-to-load forwarding.

Two properties must hold simultaneously:

* *correctness* — a load whose doppelganger is in flight must still commit
  the value of an aliasing older store (the forwarding override);
* *security* — the doppelganger access must still appear in the memory
  hierarchy even when a store aliases its predicted address (a store must
  not be able to make a doppelganger invisible, §4.4).
"""

import pytest

from repro.attacks.gadgets import STL_DATA_ADDR, store_forward_probe
from repro.attacks.harness import attack_config
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import ALL_SCHEME_NAMES


class TestForwardingCorrectness:
    @pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
    def test_load_commits_store_value(self, scheme):
        gadget = store_forward_probe(store_value=777)
        reference = gadget.program.interpret()
        core = Core(gadget.program, make_scheme(scheme), config=attack_config())
        core.run()
        assert core.arch.read_mem(8) == reference.state.read_mem(8)

    def test_checksum_includes_store_value_exactly_once(self):
        gadget = store_forward_probe(store_value=1000)
        result = gadget.program.interpret()
        # 39 rounds read the initial value 1, the last round reads 1000.
        assert result.state.read_mem(8) == 39 * 1 + 1000


class TestDoppelgangerVisibility:
    def test_doppelganger_issues_despite_aliasing_store(self):
        """§4.4: forwarding happens transparently by overriding the
        preload; the doppelganger still accesses memory."""
        gadget = store_forward_probe()
        core = Core(gadget.program, make_scheme("stt+ap"), config=attack_config())
        core.hierarchy.watch([STL_DATA_ADDR])
        core.run()
        counts = core.hierarchy.watched_counts()
        line = core.hierarchy.line_address(STL_DATA_ADDR)
        # The trained load's line is accessed many times: the demand loads
        # and the doppelganger accesses (which are not suppressed by the
        # aliasing store).
        assert core.stats.dl_issued > 0
        assert counts[line] > 0

    @pytest.mark.parametrize("scheme", ["nda+ap", "stt+ap", "dom+ap"])
    def test_forwarded_doppelganger_counted(self, scheme):
        """When an aliasing store's value overrides a correct preload the
        engine records the override (dl_forwarded)."""
        gadget = store_forward_probe()
        core = Core(gadget.program, make_scheme(scheme), config=attack_config())
        core.run()
        # The final round has a store immediately preceding the load at
        # the same address; with a correct prediction in flight this is
        # either a forwarding override or a plain store-to-load forward.
        assert core.stats.dl_forwarded + core.stats.store_to_load_forwards > 0

    def test_forwarding_does_not_change_access_visibility_between_secrets(self):
        """The store value must not modulate the doppelganger's memory
        behaviour: runs that differ only in the *stored value* produce
        identical access counts on the probed line."""
        counts = {}
        for value in (5, 999):
            gadget = store_forward_probe(store_value=value)
            core = Core(
                gadget.program, make_scheme("dom+ap"), config=attack_config()
            )
            core.hierarchy.watch([STL_DATA_ADDR])
            core.run()
            line = core.hierarchy.line_address(STL_DATA_ADDR)
            counts[value] = core.hierarchy.watched_counts()[line]
        assert counts[5] == counts[999]
