"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    PredictorConfig,
    SystemConfig,
    small_config,
)
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme

ALL_SCHEME_NAMES = (
    "unsafe",
    "nda",
    "stt",
    "dom",
    "unsafe+ap",
    "nda+ap",
    "stt+ap",
    "dom+ap",
)


@pytest.fixture
def small_cfg() -> SystemConfig:
    """A scaled-down configuration exercising capacity limits quickly."""
    return small_config()


@pytest.fixture
def default_like_cfg() -> SystemConfig:
    """The Table 1 configuration (shared instance is fine: frozen)."""
    return SystemConfig()


def run_to_completion(program: Program, scheme_name: str, config=None):
    """Run a program to its halt under a scheme; returns the core."""
    core = Core(program, make_scheme(scheme_name), config=config)
    core.run()
    return core


def assert_matches_interpreter(program: Program, scheme_name: str, config=None,
                               check_registers=(), check_memory=()):
    """Run out-of-order and in-order; assert architectural state matches."""
    reference = program.interpret()
    core = run_to_completion(program, scheme_name, config)
    assert core.halted, f"{scheme_name}: program did not halt"
    for reg in check_registers:
        assert core.arch.read_reg(reg) == reference.state.read_reg(reg), (
            f"{scheme_name}: r{reg} mismatch"
        )
    for address in check_memory:
        assert core.arch.read_mem(address) == reference.state.read_mem(address), (
            f"{scheme_name}: mem[{address:#x}] mismatch"
        )
    return core


def counting_loop(n: int = 50) -> Program:
    """A tiny loop program: sums 0..n-1 into r3, stores at address 8."""
    b = CodeBuilder()
    b.li(1, n)
    b.li(2, 0)
    b.li(3, 0)
    b.label("loop")
    b.add(3, 3, 2)
    b.addi(2, 2, 1)
    b.blt(2, 1, "loop")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="counting_loop")
