"""Behavioural tests for Speculative Taint Tracking."""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.pipeline.uop import UNTAINTED
from repro.schemes import make_scheme
from repro.schemes.base import READY


def tainted_transmit_program():
    """A speculative load whose value forms another load's address."""
    b = CodeBuilder()
    b.set_memory(0x1000, 0x2000)   # value that becomes an address
    b.set_memory(0x2000, 123)
    b.li(1, 1)
    b.li(2, 1)
    for _ in range(12):
        b.mul(2, 2, 2)             # slow predicate
    b.beq(2, 0, "skip")            # unresolved branch: shadow source
    b.load(3, 0, disp=0x1000)      # speculative -> tainted output
    b.load(4, 3)                   # transmitter: tainted address
    b.label("skip")
    b.store(4, 0, disp=8)
    b.halt()
    return b.build(name="stt_probe")


class TestTaintPropagation:
    def test_architecturally_correct(self):
        core = Core(tainted_transmit_program(), make_scheme("stt"))
        core.run()
        assert core.arch.read_mem(8) == 123

    def test_speculative_load_output_tainted(self):
        scheme = make_scheme("stt")
        core = Core(tainted_transmit_program(), scheme)
        core.hierarchy.warm([0x1000])  # producer completes under the shadow
        saw_tainted = False
        for _ in range(400):
            if core.halted:
                break
            core.step()
            for uop in core.rob:
                if uop.inst.is_load and uop.completed and uop.taint != UNTAINTED:
                    assert scheme.is_tainted(uop.taint) or (
                        not core.shadows.is_speculative(uop.taint)
                    )
                    saw_tainted = True
        assert saw_tainted

    def test_tainted_address_load_delayed(self):
        core = Core(tainted_transmit_program(), make_scheme("stt"))
        core.hierarchy.warm([0x1000])
        core.run()
        assert core.stats.delayed_transmitters > 0

    def test_dependent_alu_executes_despite_taint(self):
        """STT's ILP advantage over NDA-P: tainted values propagate to
        non-transmitters, so a dependent ALU chain completes sooner."""
        b = CodeBuilder()
        b.set_memory(0x1000, 3)
        b.li(2, 1)
        for _ in range(14):
            b.mul(2, 2, 2)
        b.beq(2, 0, "skip")
        b.load(3, 0, disp=0x1000)
        for _ in range(8):
            b.addi(3, 3, 1)        # dependent, non-transmitting chain
        b.label("skip")
        b.store(3, 0, disp=8)
        b.halt()
        program = b.build()
        stt = Core(program, make_scheme("stt"))
        stt.run()
        nda = Core(program, make_scheme("nda"))
        nda.run()
        assert stt.arch.read_mem(8) == nda.arch.read_mem(8) == 11
        assert stt.stats.cycles <= nda.stats.cycles

    def test_taint_clears_at_visibility_point(self):
        scheme = make_scheme("stt")
        core = Core(tainted_transmit_program(), scheme)
        core.run()
        # After the run no shadows remain: any recorded taint is cleared.
        assert not scheme.is_tainted(5)
        assert not scheme.is_tainted(UNTAINTED)

    def test_untainted_operand_never_blocks(self):
        scheme = make_scheme("stt")
        core = Core(tainted_transmit_program(), scheme)
        # Before running anything the frontier is infinite.
        from repro.isa.instructions import Instruction, Opcode
        from repro.pipeline.uop import MicroOp

        load = MicroOp(1, 0, Instruction(Opcode.LOAD, rd=1, rs1=2), 0)
        load.taint = UNTAINTED
        assert scheme.load_block_seq(load) == READY


class TestMaxRootRepresentation:
    def test_max_root_exactness(self):
        """If the youngest root is non-speculative, so is every older one —
        the property that makes max-root taint exact, not conservative."""
        from repro.pipeline.shadows import ShadowTracker

        shadows = ShadowTracker()
        shadows.branch_dispatched(10)
        # Roots 5 and 8 are both older than the unresolved branch at 10:
        # both non-speculative, so a merged taint max(5, 8) = 8 is clear.
        assert shadows.is_nonspeculative(8)
        assert shadows.is_nonspeculative(5)
        # Roots 11 and 15 are both covered; max = 15 is tainted, and so is
        # the older 11 — blocking on 15 never under-blocks 11.
        assert shadows.is_speculative(15)
        assert shadows.is_speculative(11)
