"""Baseline sanity: the unsafe scheme imposes no restriction anywhere."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.core import Core
from repro.pipeline.uop import MicroOp, UNTAINTED
from repro.schemes import make_scheme
from repro.schemes.base import READY

from tests.conftest import counting_loop


@pytest.fixture
def attached():
    scheme = make_scheme("unsafe")
    core = Core(counting_loop(5), scheme)
    return core, scheme


class TestNoRestrictions:
    def test_all_hooks_ready(self, attached):
        core, scheme = attached
        core.shadows.branch_dispatched(1)  # speculation everywhere
        load = MicroOp(10, 0, Instruction(Opcode.LOAD, rd=1, rs1=2), 0)
        branch = MicroOp(11, 0, Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=0), 0)
        store = MicroOp(12, 0, Instruction(Opcode.STORE, rs2=1, rs1=2), 0)
        assert scheme.value_block_seq(load) == READY
        assert scheme.load_block_seq(load) == READY
        assert scheme.branch_block_seq(branch, UNTAINTED) == READY
        assert scheme.store_block_seq(store, UNTAINTED) == READY
        assert not scheme.load_is_probe(load)
        assert not scheme.is_tainted(5)
        assert scheme.load_result_taint(load) == UNTAINTED

    def test_no_taint_no_vp_no_engine(self, attached):
        core, scheme = attached
        assert not scheme.uses_taint
        assert not scheme.uses_value_prediction
        assert core.engine is None
        assert core.value_pred is None

    def test_fastest_or_tied_on_every_kernel(self):
        """The unsafe baseline must never lose to a secure scheme on the
        suite kernels (modulo tiny timing noise and the known scatter
        violation-storm corner, which the suite avoids)."""
        from repro.harness.runner import run_benchmark

        for name in ("libquantum", "hmmer", "omnetpp"):
            base = run_benchmark(name, "unsafe", warmup=800, measure=2500)
            for scheme in ("nda", "stt", "dom"):
                secure = run_benchmark(name, scheme, warmup=800, measure=2500)
                assert secure.ipc <= base.ipc * 1.03, (name, scheme)
