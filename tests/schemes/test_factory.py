"""Tests for scheme construction and the registry."""

import pytest

from repro.schemes import (
    SCHEME_CLASSES,
    SCHEME_NAMES,
    DelayOnMiss,
    NDAPermissive,
    STT,
    UnsafeBaseline,
    make_scheme,
)


class TestFactory:
    def test_all_names_constructible(self):
        for name in SCHEME_NAMES:
            scheme = make_scheme(name)
            assert scheme.name == name
            assert not scheme.address_prediction

    def test_ap_suffix(self):
        scheme = make_scheme("dom+ap")
        assert isinstance(scheme, DelayOnMiss)
        assert scheme.address_prediction

    def test_explicit_flag(self):
        scheme = make_scheme("nda", address_prediction=True)
        assert isinstance(scheme, NDAPermissive)
        assert scheme.address_prediction

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(make_scheme("  STT  "), STT)
        assert make_scheme("DOM+AP").address_prediction

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("sdo")

    def test_describe(self):
        assert make_scheme("unsafe").describe() == "unsafe"
        assert make_scheme("stt+ap").describe() == "stt+AP"


class TestSchemeMetadata:
    def test_only_stt_uses_taint(self):
        assert make_scheme("stt").uses_taint
        for name in ("unsafe", "nda", "dom"):
            assert not make_scheme(name).uses_taint

    def test_only_dom_releases_dl_misses_at_nonspec(self):
        assert make_scheme("dom").dl_miss_release_at_nonspec
        for name in ("unsafe", "nda", "stt"):
            assert not make_scheme(name).dl_miss_release_at_nonspec

    def test_registry_is_complete(self):
        assert set(SCHEME_CLASSES) == {"unsafe", "nda", "stt", "dom", "dom+vp"}
        assert SCHEME_CLASSES["unsafe"] is UnsafeBaseline

    def test_dom_vp_flags(self):
        scheme = make_scheme("dom+vp")
        assert scheme.uses_value_prediction
        assert not scheme.address_prediction
        # Forcing AP on DoM+VP is ignored: the scheme exists for a clean
        # VP-vs-AP comparison.
        assert not make_scheme("dom+vp", address_prediction=True).address_prediction
