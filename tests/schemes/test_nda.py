"""Behavioural tests for NDA-P (permissive propagation)."""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.pipeline.uop import UopState
from repro.schemes import make_scheme
from repro.schemes.base import READY


def speculative_load_program():
    """A load under a slowly-resolving branch, with a dependent add."""
    b = CodeBuilder()
    b.set_memory(0x1000, 77)
    b.li(1, 1)
    # Slow predicate: a chain of multiplies keeps the branch unresolved.
    b.li(2, 1)
    for _ in range(12):
        b.mul(2, 2, 2)
    b.beq(2, 0, "never")      # not taken; resolves late
    b.load(3, 0, disp=0x1000)  # speculative while the branch is pending
    b.addi(4, 3, 1)            # dependent: NDA must delay this
    b.label("never")
    b.store(4, 0, disp=8)
    b.halt()
    return b.build(name="nda_probe")


class TestPermissivePropagation:
    def test_architecturally_correct(self):
        core = Core(speculative_load_program(), make_scheme("nda"))
        core.run()
        assert core.arch.read_mem(8) == 78

    def test_speculative_load_issues_but_value_locked(self):
        """NDA-P lets the load access memory; only propagation waits."""
        core = Core(speculative_load_program(), make_scheme("nda"))
        core.hierarchy.warm([0x1000])  # L1 hit: completes under the shadow
        load_seq = None
        saw_completed_but_locked = False
        for _ in range(500):
            if core.halted:
                break
            core.step()
            for uop in core.rob:
                if uop.inst.is_load and uop.pc > 10:
                    load_seq = uop.seq
                    if (
                        uop.state == UopState.COMPLETED
                        and core.shadows.is_speculative(uop.seq)
                    ):
                        # Completed (memory access done) yet still under a
                        # shadow: value must be locked.
                        assert core.scheme.value_block_seq(uop) != READY
                        saw_completed_but_locked = True
        assert load_seq is not None
        assert saw_completed_but_locked, "load never observed locked"

    def test_delayed_propagations_counted(self):
        core = Core(speculative_load_program(), make_scheme("nda"))
        core.hierarchy.warm([0x1000])
        core.run()
        assert core.stats.delayed_propagations > 0

    def test_nonspeculative_load_propagates_freely(self):
        b = CodeBuilder()
        b.set_memory(0x1000, 5)
        b.load(1, 0, disp=0x1000)  # no older branches/stores: non-speculative
        b.addi(2, 1, 1)
        b.store(2, 0, disp=8)
        b.halt()
        core = Core(b.build(), make_scheme("nda"))
        baseline = Core(b.build(), make_scheme("unsafe"))
        stats = core.run()
        base_stats = baseline.run()
        assert core.arch.read_mem(8) == 6
        # Without speculation NDA adds no cycles over the baseline.
        assert stats.cycles == base_stats.cycles

    def test_non_load_values_never_locked(self):
        scheme = make_scheme("nda")
        core = Core(speculative_load_program(), scheme)
        core.run()
        # ALU producers are always READY under NDA regardless of shadows.
        from repro.isa.instructions import Instruction, Opcode
        from repro.pipeline.uop import MicroOp

        alu = MicroOp(10**9, 0, Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3), 0)
        assert scheme.value_block_seq(alu) == READY


class TestNDASlowdown:
    def test_nda_never_faster_than_unsafe_on_dependent_chains(self):
        from repro.workloads.kernels import pointer_chase_kernel

        program = pointer_chase_kernel(
            iterations=1 << 20, nodes=1 << 10, sequential_fraction=0.0,
            dependent_check=True, odd_fraction=0.2, seed=5,
        )
        unsafe = Core(program, make_scheme("unsafe"))
        unsafe.run(max_instructions=4000)
        nda = Core(program, make_scheme("nda"))
        nda.run(max_instructions=4000)
        assert nda.stats.ipc <= unsafe.stats.ipc * 1.02
