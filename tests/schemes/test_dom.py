"""Behavioural tests for Delay-on-Miss."""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme


def speculative_miss_program(warm_secret=False):
    """A load under a slow branch that misses (or hits) in the L1."""
    b = CodeBuilder()
    b.set_memory(0x9000, 42)
    b.li(2, 1)
    for _ in range(14):
        b.mul(2, 2, 2)             # slow predicate keeps the shadow open
    b.beq(2, 0, "skip")
    b.load(3, 0, disp=0x9000)      # speculative access
    b.label("skip")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="dom_probe")


class TestDelayOnMiss:
    def test_architecturally_correct(self):
        core = Core(speculative_miss_program(), make_scheme("dom"))
        core.run()
        assert core.arch.read_mem(8) == 42

    def test_speculative_miss_is_delayed_and_reissued(self):
        core = Core(speculative_miss_program(), make_scheme("dom"))
        core.run()
        assert core.stats.dom_delayed_misses >= 1
        assert core.stats.dom_reissued_loads >= 1

    def test_speculative_miss_leaves_no_l2_traffic_while_delayed(self):
        """The probe must not propagate to L2 — that's the DoM guarantee."""
        core = Core(speculative_miss_program(), make_scheme("dom"))
        # Run only until the probe has missed but the branch is unresolved.
        for _ in range(12):
            core.step()
        assert core.stats.l2_accesses == 0

    def test_speculative_hit_completes(self):
        core = Core(speculative_miss_program(), make_scheme("dom"))
        core.hierarchy.warm([0x9000])
        core.run()
        assert core.stats.dom_delayed_misses == 0
        assert core.arch.read_mem(8) == 42

    def test_hit_faster_than_miss_under_dom(self):
        program = speculative_miss_program()
        missing = Core(program, make_scheme("dom"))
        missing.run()
        hitting = Core(program, make_scheme("dom"))
        hitting.hierarchy.warm([0x9000])
        hitting.run()
        assert hitting.stats.cycles < missing.stats.cycles

    def test_values_propagate_freely_after_hit(self):
        """DoM does not lock values (unlike NDA): a dependent of a
        speculative L1 hit executes immediately."""
        b = CodeBuilder()
        b.set_memory(0x9000, 10)
        b.li(2, 1)
        for _ in range(14):
            b.mul(2, 2, 2)
        b.beq(2, 0, "skip")
        b.load(3, 0, disp=0x9000)
        for _ in range(6):
            b.addi(3, 3, 1)
        b.label("skip")
        b.store(3, 0, disp=8)
        b.halt()
        program = b.build()
        dom = Core(program, make_scheme("dom"))
        dom.hierarchy.warm([0x9000])
        dom.run()
        nda = Core(program, make_scheme("nda"))
        nda.hierarchy.warm([0x9000])
        nda.run()
        assert dom.arch.read_mem(8) == nda.arch.read_mem(8) == 16
        assert dom.stats.cycles <= nda.stats.cycles


class TestDelayedReplacementUpdate:
    def test_squashed_speculative_hit_leaves_lru_untouched(self):
        """A wrong-path DoM hit must not refresh replacement state: the
        retroactive update only happens at commit, which never comes."""
        b = CodeBuilder()
        b.set_memory(0x9000, 1)
        b.li(1, 1)
        b.li(2, 0)
        # This branch is *taken*; the predictor starts not-taken, so the
        # fall-through (wrong path) executes transiently.
        b.beq(1, 1, "target")
        b.load(3, 0, disp=0x9000)   # transient speculative load
        b.label("target")
        b.halt()
        core = Core(b.build(), make_scheme("dom"))
        core.hierarchy.warm([0x9000])
        core.run()
        # No committed load -> no touch happened (we can't observe LRU
        # stamps directly here, but the touch-pending path requires commit;
        # assert the load never committed).
        assert core.stats.committed_loads == 0

    def test_committed_speculative_hit_touches_at_commit(self):
        core = Core(speculative_miss_program(), make_scheme("dom"))
        core.hierarchy.warm([0x9000])
        core.run()
        assert core.stats.committed_loads == 1


class TestDoMAPRules:
    def test_plain_dom_resolves_branches_out_of_order(self):
        from repro.pipeline.uop import UNTAINTED
        from repro.schemes.base import READY
        from repro.isa.instructions import Instruction, Opcode
        from repro.pipeline.uop import MicroOp

        scheme = make_scheme("dom")
        core = Core(speculative_miss_program(), scheme)
        branch = MicroOp(50, 0, Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=0), 0)
        core.shadows.branch_dispatched(10)  # older unresolved branch
        assert scheme.branch_block_seq(branch, UNTAINTED) == READY

    def test_dom_ap_resolves_branches_in_order(self):
        from repro.pipeline.uop import UNTAINTED
        from repro.schemes.base import READY
        from repro.isa.instructions import Instruction, Opcode
        from repro.pipeline.uop import MicroOp

        scheme = make_scheme("dom+ap")
        core = Core(speculative_miss_program(), scheme)
        branch = MicroOp(50, 0, Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=0), 0)
        core.shadows.branch_dispatched(10)
        assert scheme.branch_block_seq(branch, UNTAINTED) == 50
        core.shadows.branch_resolved(10)
        assert scheme.branch_block_seq(branch, UNTAINTED) == READY
