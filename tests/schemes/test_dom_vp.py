"""Behavioural tests for the DoM+VP extension (the paper's foil)."""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import counting_loop


def value_strided_misses(n=60, base=0x90000, value_stride=0):
    """Loads whose VALUES stride predictably but always miss in the L1
    (distinct lines) and sit under a slow load-dependent branch, so DoM
    delays them — exactly the case VP was proposed for."""
    b = CodeBuilder()
    for i in range(n + 4):
        b.set_memory(base + 4096 * i, 100 + value_stride * i)
    b.li(1, n)
    b.li(2, 0)
    b.li(3, 0)
    b.li(10, base)
    b.label("loop")
    b.muli(4, 2, 4096)
    b.add(5, 10, 4)
    b.load(6, 5)                  # L1 miss every time (fresh line)
    b.add(3, 3, 6)
    b.andi(7, 6, 1)               # value-dependent branch keeps shadows
    b.beq(7, 7, "even")           # always taken, resolution needs r7
    b.label("even")
    b.addi(2, 2, 1)
    b.blt(2, 1, "loop")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="value_strided")


def random_valued_misses(n=60, base=0x90000, seed=9):
    import random

    rng = random.Random(seed)
    b = CodeBuilder()
    for i in range(n + 4):
        b.set_memory(base + 4096 * i, rng.randrange(1 << 30))
    b.li(1, n)
    b.li(2, 0)
    b.li(3, 0)
    b.li(10, base)
    b.label("loop")
    b.muli(4, 2, 4096)
    b.add(5, 10, 4)
    b.load(6, 5)
    b.add(3, 3, 6)
    b.addi(2, 2, 1)
    b.blt(2, 1, "loop")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="value_random")


class TestCorrectness:
    def test_matches_interpreter_with_predictable_values(self):
        program = value_strided_misses()
        reference = program.interpret().state.read_mem(8)
        core = Core(program, make_scheme("dom+vp"))
        core.run()
        assert core.arch.read_mem(8) == reference

    def test_matches_interpreter_with_random_values(self):
        program = random_valued_misses()
        reference = program.interpret().state.read_mem(8)
        core = Core(program, make_scheme("dom+vp"))
        core.run()
        assert core.arch.read_mem(8) == reference

    def test_random_program_equivalence(self):
        from tests.pipeline.test_core_correctness import (
            assert_equivalent,
            random_program,
        )

        for seed in (11, 12):
            assert_equivalent(random_program(seed, body_length=25, iterations=6),
                              "dom+vp")

    def test_counting_loop_unaffected(self):
        core = Core(counting_loop(80), make_scheme("dom+vp"))
        core.run()
        assert core.arch.read_mem(8) == sum(range(80))


class TestValueSpeculation:
    def test_constant_values_predicted_correctly(self):
        """Stride-0 (constant) values are immune to in-flight staleness:
        every validated prediction is correct."""
        core = Core(value_strided_misses(value_stride=0), make_scheme("dom+vp"))
        stats = core.run()
        assert stats.vp_predictions > 10
        assert stats.vp_correct > 10
        assert stats.vp_wrong == 0

    def test_striding_values_suffer_inflight_staleness(self):
        """With several instances of the load in flight, a commit-trained
        value predictor hands stale predictions to the younger ones —
        the structural reason the DoM paper's VP 'did not yield
        significant improvement' [41]."""
        core = Core(value_strided_misses(value_stride=5), make_scheme("dom+vp"))
        stats = core.run()
        assert stats.vp_predictions > 10
        assert stats.vp_wrong > stats.vp_correct

    def test_mispredicted_values_squash(self):
        core = Core(random_valued_misses(), make_scheme("dom+vp"))
        stats = core.run()
        # Random values: whatever was predicted was mostly wrong, and
        # every wrong prediction forced a squash — VP's structural cost.
        assert stats.vp_wrong == stats.vp_squashes
        assert stats.vp_correct <= stats.vp_predictions

    def test_correct_prediction_beats_plain_dom(self):
        program = value_strided_misses(n=120, value_stride=0)
        vp = Core(program, make_scheme("dom+vp"))
        vp_stats = vp.run()
        dom = Core(program, make_scheme("dom"))
        dom_stats = dom.run()
        assert vp_stats.cycles <= dom_stats.cycles

    def test_vp_never_used_without_the_scheme(self):
        core = Core(value_strided_misses(), make_scheme("dom"))
        stats = core.run()
        assert core.value_pred is None
        assert stats.vp_predictions == 0


class TestPaperComparison:
    def test_address_prediction_beats_value_prediction_on_random_values(self):
        """§8: 'addresses are easier to predict than values' — the
        addresses here stride perfectly while the values are random, so
        DoM+AP must beat DoM+VP."""
        program = random_valued_misses(n=100)
        vp = Core(program, make_scheme("dom+vp"))
        vp_stats = vp.run()
        ap = Core(random_valued_misses(n=100), make_scheme("dom+ap"))
        ap_stats = ap.run()
        assert ap_stats.cycles < vp_stats.cycles
