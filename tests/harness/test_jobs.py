"""JobEngine retry-backoff contracts.

The schedule is seeded jittered-exponential: deterministic for a given
``(retries, base, cap, seed)`` so a failing run replays with the same
pacing, jittered so a crashed wave's survivors do not re-stampede the
machine in lockstep, and capped so a long retry ladder cannot stall a
campaign for minutes per wave.
"""

import pytest

from repro.harness.jobs import JobEngine, backoff_schedule


class TestBackoffSchedule:
    def test_pinned_deterministic_schedule(self):
        """The exact schedule for the default seed is part of the engine's
        replayability contract; an accidental reseed breaks replays."""
        assert backoff_schedule(3, 0.5) == (
            0.30724324115254587,
            0.577953351385971,
            1.087657532350552,
        )

    def test_same_inputs_same_schedule(self):
        assert backoff_schedule(5, 0.25) == backoff_schedule(5, 0.25)

    def test_seed_changes_schedule(self):
        assert backoff_schedule(3, 0.5) != backoff_schedule(3, 0.5, seed=1)

    def test_exponential_envelope_with_jitter(self):
        """Every delay lands in [0.5, 1.0] x base x 2^wave (half-jitter)."""
        base = 0.5
        for wave, delay in enumerate(backoff_schedule(6, base, cap=1e9)):
            ceiling = base * (2 ** wave)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_cap_bounds_every_delay(self):
        cap = 4.0
        schedule = backoff_schedule(8, 1.0, cap=cap)
        assert len(schedule) == 8
        assert max(schedule) <= cap
        # The ladder actually reaches the cap region, not just under it.
        assert max(schedule) > cap / 2

    def test_zero_base_means_no_sleeping(self):
        assert backoff_schedule(3, 0.0) == (0.0, 0.0, 0.0)

    def test_zero_retries_empty_schedule(self):
        assert backoff_schedule(0, 0.5) == ()


class TestEngineUsesSchedule:
    def test_engine_precomputes_its_schedule(self):
        engine = JobEngine(
            worker=_noop_worker, jobs=1, retries=3, retry_backoff=0.5
        )
        assert engine.backoff == backoff_schedule(3, 0.5)

    def test_engine_respects_cap_and_seed(self):
        engine = JobEngine(
            worker=_noop_worker,
            jobs=1,
            retries=4,
            retry_backoff=1.0,
            backoff_cap=2.0,
            backoff_seed=7,
        )
        assert engine.backoff == backoff_schedule(4, 1.0, cap=2.0, seed=7)
        assert max(engine.backoff) <= 2.0


def _noop_worker(job):
    return {"ok": True, "value": job}
