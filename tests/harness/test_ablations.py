"""Tests for the ablation sweep helpers."""

import pytest

from repro.harness.ablations import (
    compare_training_policy,
    format_sweep,
    sweep_confidence_threshold,
    sweep_load_ports,
    sweep_predictor_entries,
)


class TestSweeps:
    def test_confidence_sweep_returns_all_points(self):
        results = sweep_confidence_threshold(
            "hmmer", thresholds=(0, 4), warmup=600, measure=1500
        )
        assert set(results) == {0, 4}
        assert all(r.stats.committed_instructions > 0 for r in results.values())

    def test_higher_threshold_never_raises_coverage(self):
        results = sweep_confidence_threshold(
            "hmmer", thresholds=(0, 6), warmup=600, measure=1500
        )
        assert results[6].stats.coverage <= results[0].stats.coverage + 1e-9

    def test_entries_sweep(self):
        results = sweep_predictor_entries(
            "hmmer", entries=(8, 1024), warmup=600, measure=1500
        )
        assert set(results) == {8, 1024}

    def test_ports_sweep_limits_dl_issue(self):
        results = sweep_load_ports("hmmer", ports=(1, 4), warmup=600, measure=1500)
        assert results[1].stats.dl_issued <= results[4].stats.dl_issued

    def test_training_policy_comparison(self):
        results = compare_training_policy("hmmer", warmup=600, measure=1500)
        assert set(results) == {"commit", "execute"}
        # The insecure variant must at minimum run and report coverage.
        assert results["execute"].stats.committed_instructions > 0


class TestFormatting:
    def test_format_sweep_renders_rows_in_order(self):
        results = sweep_load_ports("hmmer", ports=(3, 1), warmup=400, measure=1000)
        text = format_sweep(results, "ports")
        lines = text.splitlines()
        assert "ports" in lines[0]
        first_key = int(lines[2].split()[0])
        assert first_key == 1  # sorted ascending regardless of sweep order
