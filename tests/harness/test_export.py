"""Tests for CSV/Markdown export and the per-benchmark report."""

import csv
import io

import pytest

from repro.harness.experiments import (
    figure1_summary,
    figure6_normalized_ipc,
    figure7_coverage_accuracy,
    figure8_cache_traffic,
)
from repro.harness.export import (
    benchmark_report,
    figure6_to_csv,
    figure6_to_markdown,
    figure7_to_csv,
    figure8_to_csv,
    summary_to_markdown,
)
from repro.harness.runner import ExperimentSession

BENCHES = ("hmmer", "mcf")


@pytest.fixture(scope="module")
def session():
    return ExperimentSession(warmup=800, measure=3000)


class TestCSV:
    def test_figure6_csv_parses(self, session):
        text = figure6_to_csv(figure6_normalized_ipc(session, benchmarks=BENCHES))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "benchmark"
        assert rows[-1][0] == "GMEAN"
        assert len(rows) == 2 + len(BENCHES)
        # Every data cell parses as a float.
        for row in rows[1:]:
            for cell in row[1:]:
                float(cell)

    def test_figure7_csv_parses(self, session):
        text = figure7_to_csv(
            figure7_coverage_accuracy(session, benchmarks=BENCHES)
        )
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "coverage", "accuracy"]
        assert rows[-1][0] == "GMEAN"

    def test_figure8_csv_has_both_levels(self, session):
        text = figure8_to_csv(figure8_cache_traffic(session, benchmarks=BENCHES))
        rows = list(csv.reader(io.StringIO(text)))
        assert any(cell.startswith("l1:") for cell in rows[0])
        assert any(cell.startswith("l2:") for cell in rows[0])


class TestMarkdown:
    def test_figure6_markdown_shape(self, session):
        text = figure6_to_markdown(
            figure6_normalized_ipc(session, benchmarks=BENCHES)
        )
        lines = text.splitlines()
        assert lines[0].startswith("| benchmark |")
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert "**GMEAN**" in text

    def test_summary_markdown_includes_paper_columns(self, session):
        text = summary_to_markdown(figure1_summary(session, benchmarks=BENCHES))
        assert "| scheme | paper | measured |" in text
        assert "reduction" in text


class TestBenchmarkReport:
    def test_report_mentions_counters(self, session):
        text = benchmark_report(session, "hmmer", schemes=("dom", "dom+ap"))
        assert "# hmmer" in text
        assert "baseline IPC" in text
        assert "domDelay" in text
        assert "dom+ap" in text

    def test_report_rows_match_schemes(self, session):
        text = benchmark_report(session, "mcf", schemes=("nda",))
        payload_rows = [
            line for line in text.splitlines() if line.startswith("nda")
        ]
        assert len(payload_rows) == 1


class TestRunResultSerialization:
    def test_json_round_trip(self, session):
        from repro.harness.export import run_result_from_json, run_result_to_json

        result = session.run("hmmer", "dom+ap")
        clone = run_result_from_json(run_result_to_json(result))
        assert clone == result
        assert clone.stats == result.stats

    def test_sweep_to_csv_has_every_counter(self, session):
        from repro.harness.export import sweep_to_csv

        results = session.sweep(BENCHES, ("unsafe", "dom"))
        rows = list(csv.reader(io.StringIO(sweep_to_csv(results))))
        header, data = rows[0], rows[1:]
        assert header[:4] == ["benchmark", "scheme", "warmup", "measure"]
        assert "cycles" in header and "dl_issued" in header
        assert len(data) == len(results)
        for row in data:
            for cell in row[2:]:
                int(cell)

    def test_sweep_to_csv_empty(self):
        from repro.harness.export import sweep_to_csv

        assert sweep_to_csv([]) == ""
