"""Cross-figure consistency: the figures are views of one sweep and must
agree with each other and with raw runs."""

import pytest

from repro.harness.experiments import (
    figure1_summary,
    figure6_normalized_ipc,
    figure7_coverage_accuracy,
)
from repro.harness.runner import ExperimentSession

BENCHES = ("hmmer", "libquantum")


@pytest.fixture(scope="module")
def session():
    return ExperimentSession(warmup=1000, measure=4000)


class TestCrossFigureConsistency:
    def test_figure1_gmean_equals_figure6_gmean(self, session):
        fig6 = figure6_normalized_ipc(session, benchmarks=BENCHES)
        fig1 = figure1_summary(session, benchmarks=BENCHES)
        for scheme, value in fig1.gmean.items():
            assert value == pytest.approx(fig6.gmean[scheme])

    def test_figure6_rows_match_raw_runs(self, session):
        fig6 = figure6_normalized_ipc(session, benchmarks=BENCHES)
        for benchmark in BENCHES:
            expected = session.normalized_ipc(benchmark, "dom")
            assert fig6.rows[benchmark]["dom"] == pytest.approx(expected)

    def test_figure7_matches_run_stats(self, session):
        fig7 = figure7_coverage_accuracy(session, benchmarks=BENCHES)
        for benchmark in BENCHES:
            stats = session.run(benchmark, "dom+ap").stats
            assert fig7.coverage[benchmark] == pytest.approx(stats.coverage)
            assert fig7.accuracy[benchmark] == pytest.approx(stats.accuracy)

    def test_slowdown_reduction_recomputable(self, session):
        fig1 = figure1_summary(session, benchmarks=BENCHES)
        for scheme in ("nda", "stt", "dom"):
            slowdown = 1.0 - fig1.gmean[scheme]
            slowdown_ap = 1.0 - fig1.gmean[f"{scheme}+ap"]
            if slowdown > 0:
                expected = (slowdown - slowdown_ap) / slowdown
                assert fig1.slowdown_reduction[scheme] == pytest.approx(expected)

    def test_session_reuse_no_resimulation(self, session):
        before = session.cached_runs()
        figure6_normalized_ipc(session, benchmarks=BENCHES)
        figure7_coverage_accuracy(session, benchmarks=BENCHES)
        figure1_summary(session, benchmarks=BENCHES)
        # Everything above reuses the same (benchmark, scheme) runs.
        assert session.cached_runs() == before
