"""Tests for the figure/table regeneration code.

Full-suite shape assertions live in the benchmarks; here a three-benchmark
micro-suite checks the experiment plumbing: normalization, geomeans,
table rendering, and the qualitative relations that must hold even on a
tiny sample (DoM slowest on streams, AP recovering, mcf unpredictable).
"""

import pytest

from repro.harness.experiments import (
    PAPER_HEADLINE,
    figure1_summary,
    figure6_normalized_ipc,
    figure7_coverage_accuracy,
    figure8_cache_traffic,
    unsafe_ap_delta,
)
from repro.harness.runner import ExperimentSession

BENCHES = ("libquantum", "mcf", "hmmer")


@pytest.fixture(scope="module")
def session():
    return ExperimentSession(warmup=1500, measure=6000)


class TestFigure6:
    def test_structure(self, session):
        result = figure6_normalized_ipc(session, benchmarks=BENCHES)
        assert set(result.rows) == set(BENCHES)
        for row in result.rows.values():
            assert set(row) == set(result.schemes)
        assert set(result.gmean) == set(result.schemes)

    def test_dom_suffers_on_streaming(self, session):
        result = figure6_normalized_ipc(session, benchmarks=BENCHES)
        assert result.rows["libquantum"]["dom"] < 0.7

    def test_ap_recovers_dom_on_streaming(self, session):
        result = figure6_normalized_ipc(session, benchmarks=BENCHES)
        row = result.rows["libquantum"]
        assert row["dom+ap"] > row["dom"] * 1.3

    def test_mcf_immune_to_ap(self, session):
        result = figure6_normalized_ipc(session, benchmarks=BENCHES)
        row = result.rows["mcf"]
        assert row["dom+ap"] == pytest.approx(row["dom"], rel=0.05)

    def test_table_renders(self, session):
        text = figure6_normalized_ipc(session, benchmarks=BENCHES).format_table()
        assert "GMEAN" in text
        assert "libquantum" in text


class TestFigure1Summary:
    def test_paper_reference_values_embedded(self, session):
        result = figure1_summary(session, benchmarks=BENCHES)
        assert result.paper_gmean == PAPER_HEADLINE
        assert set(result.slowdown_reduction) == {"nda", "stt", "dom"}

    def test_ap_always_reduces_slowdown_or_zero(self, session):
        result = figure1_summary(session, benchmarks=BENCHES)
        for scheme, reduction in result.slowdown_reduction.items():
            assert reduction >= -0.2, f"{scheme} AP made things much worse"

    def test_renders(self, session):
        assert "slowdown reduction" in figure1_summary(
            session, benchmarks=BENCHES
        ).format_table()


class TestFigure7:
    def test_coverage_accuracy_in_range(self, session):
        result = figure7_coverage_accuracy(session, benchmarks=BENCHES)
        for value in list(result.coverage.values()) + list(result.accuracy.values()):
            assert 0.0 <= value <= 1.0

    def test_mcf_lowest_coverage(self, session):
        result = figure7_coverage_accuracy(session, benchmarks=BENCHES)
        assert result.coverage["mcf"] == min(result.coverage.values())

    def test_schemes_within_a_percent(self, session):
        """§7: coverage/accuracy nearly identical across schemes (trained
        on the same committed stream)."""
        dom = figure7_coverage_accuracy(session, benchmarks=("hmmer",), scheme="dom+ap")
        stt = figure7_coverage_accuracy(session, benchmarks=("hmmer",), scheme="stt+ap")
        assert dom.coverage["hmmer"] == pytest.approx(
            stt.coverage["hmmer"], abs=0.05
        )

    def test_renders(self, session):
        assert "coverage" in figure7_coverage_accuracy(
            session, benchmarks=BENCHES
        ).format_table()


class TestFigure8:
    def test_normalized_access_structure(self, session):
        result = figure8_cache_traffic(session, benchmarks=BENCHES)
        for table in (result.l1, result.l2):
            assert set(table) == set(BENCHES)
            for row in table.values():
                for value in row.values():
                    assert value > 0

    def test_ap_increases_l1_accesses_when_predictions_wrong(self, session):
        """Mispredicted doppelgangers add L1 traffic on top of the demand
        accesses (paper: visible increase on xalancbmk).  A correct
        prediction replaces the demand access 1:1, so the effect shows on
        low-accuracy benchmarks."""
        result = figure8_cache_traffic(session, benchmarks=("xalancbmk",))
        assert (
            result.l1["xalancbmk"]["stt+ap"]
            > result.l1["xalancbmk"]["stt"] * 1.02
        )

    def test_renders(self, session):
        assert "L2 accesses" in figure8_cache_traffic(
            session, benchmarks=BENCHES
        ).format_table()


class TestUnsafeAP:
    def test_small_gain_on_baseline(self, session):
        result = unsafe_ap_delta(session, benchmarks=BENCHES)
        # §7: ~0.5% geomean on the paper's suite; allow a loose band for
        # the micro-suite, but it must not be a large slowdown or speedup.
        assert -0.05 < result.gmean_gain < 0.15

    def test_renders(self, session):
        assert "GMEAN gain" in unsafe_ap_delta(session, benchmarks=BENCHES).format_table()


class _OneBadBenchmark:
    """A stub session: 'broken' raises the typed error, others delegate."""

    def __init__(self, real):
        self.real = real

    def run(self, benchmark, scheme):
        from repro.common.errors import EmptyMeasurementError

        if benchmark == "broken":
            raise EmptyMeasurementError(
                "program shorter than warmup window",
                benchmark=benchmark, scheme=scheme,
            )
        return self.real.run(benchmark, scheme)

    def normalized_ipc(self, benchmark, scheme):
        from repro.common.errors import EmptyMeasurementError

        if benchmark == "broken":
            raise EmptyMeasurementError(
                "program shorter than warmup window",
                benchmark=benchmark, scheme=scheme,
            )
        return self.real.normalized_ipc(benchmark, scheme)


class TestSkipAndReport:
    """One benchmark with an empty measurement window must not abort a
    whole figure sweep (regression: it used to die on ZeroDivisionError
    or a geomean ValueError)."""

    def test_figure6_skips_and_reports(self, session):
        result = figure6_normalized_ipc(
            _OneBadBenchmark(session), benchmarks=("hmmer", "broken", "mcf")
        )
        assert set(result.rows) == {"hmmer", "mcf"}
        assert "broken" in result.skipped
        assert "shorter than warmup" in result.skipped["broken"]
        for scheme, value in result.gmean.items():
            assert value > 0
        assert "skipped broken" in result.format_table()

    def test_figure7_skips_and_reports(self, session):
        result = figure7_coverage_accuracy(
            _OneBadBenchmark(session), benchmarks=("hmmer", "broken")
        )
        assert set(result.coverage) == {"hmmer"}
        assert "broken" in result.skipped

    def test_figure8_skips_and_reports(self, session):
        result = figure8_cache_traffic(
            _OneBadBenchmark(session), benchmarks=("hmmer", "broken")
        )
        assert set(result.l1) == {"hmmer"}
        assert "broken" in result.skipped

    def test_unsafe_ap_skips_and_reports(self, session):
        result = unsafe_ap_delta(
            _OneBadBenchmark(session), benchmarks=("hmmer", "broken")
        )
        assert set(result.per_benchmark) == {"hmmer"}
        assert "broken" in result.skipped

    def test_figure1_survives_via_figure6(self, session):
        result = figure1_summary(
            _OneBadBenchmark(session), benchmarks=("hmmer", "broken", "mcf")
        )
        assert set(result.slowdown_reduction) == {"nda", "stt", "dom"}
