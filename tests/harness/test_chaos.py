"""Chaos harness contracts: deterministic plans, injected write faults,
kill-and-resume, and the sweep-under-faults differential.

The acceptance bar from the resilience PR: a sweep battered by crashes,
torn writes, corrupted payloads, disk-full, and a mid-wave kill must
converge to results **bit-identical** to a fault-free run, with every
injected corruption quarantined — and a resumed campaign must not
recompute jobs that already resolved (verified by store hit counters).
"""

import pytest

from repro.common.stats import RunResult, SimStats
from repro.harness import parallel
from repro.harness.chaos import (
    ChaosEngine,
    ChaosFS,
    ChaosInterrupt,
    FaultPlan,
    run_chaos_check,
)
from repro.harness.parallel import ParallelSession
from repro.harness.store import key_digest

BENCHMARKS = ("mcf", "hmmer")
SCHEMES = ("unsafe", "dom")


def fake_result(benchmark, scheme):
    stats = SimStats()
    stats.committed_instructions = 1000
    stats.cycles = 2000
    return RunResult(benchmark=benchmark, scheme=scheme, stats=stats, metadata={})


def fake_run_benchmark(benchmark, scheme, config=None, warmup=0, measure=0):
    return fake_result(benchmark, scheme)


def make_session(tmp_path, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("warmup", 10)
    kwargs.setdefault("measure", 10)
    kwargs.setdefault("cache_dir", tmp_path)
    kwargs.setdefault("retry_backoff", 0.01)
    return ParallelSession(**kwargs)


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan.chaotic(seed=3)
        digest = key_digest({"benchmark": "mcf"})
        assert plan.worker_fault(digest, 0) == plan.worker_fault(digest, 0)
        assert plan.write_fault("entry.json", 0) == plan.write_fault(
            "entry.json", 0
        )

    def test_seed_changes_the_schedule(self):
        digests = [key_digest({"job": index}) for index in range(64)]
        a = [FaultPlan.chaotic(seed=0).worker_fault(d, 0) for d in digests]
        b = [FaultPlan.chaotic(seed=1).worker_fault(d, 0) for d in digests]
        assert a != b

    def test_faults_stop_after_fault_attempts(self):
        """Retry attempts run fault-free, so every faulted job converges."""
        plan = FaultPlan(seed=0, crash=1.0, torn_write=1.0)
        digest = key_digest({"benchmark": "mcf"})
        assert plan.worker_fault(digest, 0) == "crash"
        assert plan.worker_fault(digest, 1) is None
        assert plan.write_fault("entry.json", 0) == "torn_write"
        assert plan.write_fault("entry.json", 1) is None

    def test_interrupt_is_a_keyboard_interrupt(self):
        """Chaos must unwind through the same paths a real Ctrl-C does."""
        assert issubclass(ChaosInterrupt, KeyboardInterrupt)


class TestChaosFS:
    def test_torn_write_is_counted_and_truncated(self, tmp_path):
        fs = ChaosFS(FaultPlan(seed=0, torn_write=1.0))
        target = tmp_path / "entry.json"
        fs.write_text(target, '{"payload": {"x": 1}}' * 10)
        assert fs.corrupt_writes == 1
        assert len(target.read_text()) < 220

    def test_second_write_goes_through_clean(self, tmp_path):
        fs = ChaosFS(FaultPlan(seed=0, torn_write=1.0))
        target = tmp_path / "entry.json"
        fs.write_text(target, "first")
        fs.write_text(target, "second")
        assert target.read_text() == "second"

    def test_temp_suffix_maps_to_the_same_entry(self, tmp_path):
        fs = ChaosFS(FaultPlan(seed=0, torn_write=1.0))
        fs.write_text(tmp_path / "entry.json.tmp-123-0", "x" * 30)
        fs.write_text(tmp_path / "entry.json.tmp-123-1", "clean write")
        assert fs.corrupt_writes == 1

    def test_disk_full_raises_enospc(self, tmp_path):
        import errno

        fs = ChaosFS(FaultPlan(seed=0, disk_full=1.0))
        with pytest.raises(OSError) as excinfo:
            fs.write_text(tmp_path / "entry.json", "doomed")
        assert excinfo.value.errno == errno.ENOSPC


class TestKillAndResume:
    def test_interrupted_sweep_resumes_without_recompute(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: kill mid-campaign, resume, and the resolved jobs
        come back from the store — simulated exactly once overall."""
        monkeypatch.setattr(parallel, "run_benchmark", fake_run_benchmark)
        chaos = ChaosEngine(FaultPlan(seed=0, interrupt_after=2))
        first = make_session(tmp_path, chaos=chaos)
        with pytest.raises(ChaosInterrupt):
            first.sweep(BENCHMARKS, SCHEMES)
        assert first.simulated == 2  # the interrupt landed after 2 stores

        resumed = make_session(tmp_path, resume=True)
        results = resumed.sweep(BENCHMARKS, SCHEMES)
        assert len(results) == 4
        assert resumed.simulated == 2  # only the unresolved half
        assert resumed.disk_hits == 2
        assert resumed.store_counters()["hits"] == 2

    def test_resume_replays_deterministic_failures_from_ledger(
        self, tmp_path, monkeypatch
    ):
        """A deterministic failure journaled before the kill is replayed
        on resume instead of being re-simulated."""
        from repro.common.errors import EmptyMeasurementError

        def broken(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "hmmer":
                raise EmptyMeasurementError(
                    "too short", benchmark=benchmark, scheme=scheme
                )
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", broken)
        first = make_session(tmp_path)
        first.sweep(BENCHMARKS, SCHEMES, skip_errors=True)
        assert len(first.skipped) == 2

        resumed = make_session(tmp_path, resume=True)
        resumed.sweep(BENCHMARKS, SCHEMES, skip_errors=True)
        assert resumed.simulated == 0
        assert resumed.counters()["ledger_hits"] == 2
        assert len(resumed.skipped) == 2


class TestChaosDifferential:
    def test_battered_sweep_is_bit_identical(self, tmp_path, monkeypatch):
        """The tentpole check: every write fault plus a mid-wave kill, and
        the final grid still equals the fault-free reference exactly."""
        monkeypatch.setattr(parallel, "run_benchmark", fake_run_benchmark)
        plan = FaultPlan(
            seed=11,
            crash=0.3,
            slow=0.0,
            torn_write=0.4,
            corrupt_write=0.4,
            disk_full=0.2,
            interrupt_after=2,
        )
        report = run_chaos_check(
            seed=11,
            benchmarks=BENCHMARKS,
            schemes=SCHEMES,
            warmup=10,
            measure=10,
            jobs=2,
            plan=plan,
            work_dir=tmp_path,
            job_timeout=15.0,
            retries=2,
            mp_context="fork",
        )
        assert report.identical, report.render()
        assert report.ok, report.render()
        assert report.pairs == 4
        # Every injected corruption was caught, quarantined, recomputed.
        assert report.quarantined >= report.corrupt_writes
        # The verify pass read the battered store, not a lucky recompute.
        assert report.verify_disk_hits + report.verify_simulated == 4

    def test_report_renders(self, tmp_path, monkeypatch):
        monkeypatch.setattr(parallel, "run_benchmark", fake_run_benchmark)
        report = run_chaos_check(
            seed=0,
            benchmarks=("mcf",),
            schemes=("unsafe",),
            warmup=10,
            measure=10,
            jobs=1,
            plan=FaultPlan(seed=0),  # no faults: trivial convergence
            work_dir=tmp_path,
        )
        text = report.render()
        assert "bit-identical" in text
        assert "OK" in text
