"""The perf-baseline harness: pair verification, JSON round trip,
profile merging, and regression comparison."""

import json

import pytest

from repro.common.errors import ReproError
from repro.harness.perfbench import (
    StatsMismatchError,
    bench_pair,
    bench_profiles,
    compare_baselines,
    load_baseline,
    run_bench,
    write_baseline,
)
from repro.harness.runner import BASELINE_SCHEME, FIGURE_SCHEMES


class TestBenchPair:
    def test_pair_records_both_loops(self):
        record = bench_pair("mcf", "dom+ap", instructions=400)
        assert record.benchmark == "mcf"
        assert record.scheme == "dom+ap"
        # run() stops at the end of the committing step, so the budget
        # can overshoot by at most one commit group.
        assert 400 <= record.instructions < 400 + 16
        assert record.cycles > 0
        # The whole point of the event-driven loop: steps < cycles.
        assert record.steps < record.cycles
        assert record.cycles_per_step > 1.0
        assert record.wall_event > 0 and record.wall_reference > 0

    def test_mismatch_is_a_hard_error(self, monkeypatch):
        """A baseline produced by diverging loops must be impossible."""
        from repro.pipeline import core as core_module

        original_run = core_module.Core.run

        def corrupted_run(self, max_instructions=None):
            result = original_run(self, max_instructions=max_instructions)
            if not self._idle_skip:
                self.stats.cycles += 1
            return result

        monkeypatch.setattr(core_module.Core, "run", corrupted_run)
        with pytest.raises(StatsMismatchError):
            bench_pair("mcf", "unsafe", instructions=200)


class TestProfiles:
    def test_full_profile_is_the_figure6_grid(self):
        profiles = bench_profiles()
        full = profiles["full"]
        assert set(full.schemes) == {BASELINE_SCHEME, *FIGURE_SCHEMES}
        assert len(full.benchmarks) > 20  # every workload profile
        quick = profiles["quick"]
        assert set(quick.benchmarks) < set(full.benchmarks)
        assert set(quick.schemes) < set(full.schemes)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            run_bench("nonexistent")


def tiny_fragment(name="quick", sim_ips=1000.0):
    record = {
        "benchmark": "mcf", "scheme": "unsafe", "instructions": 100,
        "cycles": 500, "steps": 100, "wall_event": 0.1,
        "wall_reference": 0.2, "sim_ips": sim_ips, "speedup": 2.0,
        "cycles_per_step": 5.0,
    }
    return {
        "profile": name,
        "instructions_per_pair": 100,
        "records": [record],
        "totals": {
            "pairs": 1, "instructions": 100, "cycles": 500, "steps": 100,
            "wall_event": 0.1, "wall_reference": 0.2, "sim_ips": sim_ips,
            "speedup": 2.0, "cycles_per_step": 5.0,
        },
    }


class TestBaselineFile:
    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = write_baseline(str(path), tiny_fragment())
        assert load_baseline(str(path)) == payload
        assert "quick" in payload["profiles"]
        assert "python" in payload["environment"]

    def test_merge_preserves_other_profiles(self, tmp_path):
        path = tmp_path / "bench.json"
        write_baseline(str(path), tiny_fragment(name="full"))
        payload = write_baseline(str(path), tiny_fragment(name="quick"))
        assert set(payload["profiles"]) == {"full", "quick"}

    def test_corrupt_baseline_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        payload = write_baseline(str(path), tiny_fragment())
        assert json.loads(path.read_text()) == payload

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_baseline(str(tmp_path / "absent.json"))


class TestCompare:
    def test_no_warning_within_threshold(self, tmp_path):
        baseline = {"profiles": {"quick": tiny_fragment(sim_ips=1000.0)}}
        current = tiny_fragment(sim_ips=900.0)  # 10% drop, threshold 20%
        assert compare_baselines(current, baseline) == []

    def test_warns_beyond_threshold(self):
        baseline = {"profiles": {"quick": tiny_fragment(sim_ips=1000.0)}}
        current = tiny_fragment(sim_ips=500.0)  # 50% drop
        warnings = compare_baselines(current, baseline)
        assert warnings and all("fell" in w for w in warnings)
        # Per-pair and aggregate regression both reported.
        assert len(warnings) == 2

    def test_missing_profile_warns_instead_of_crashing(self):
        warnings = compare_baselines(tiny_fragment(), {"profiles": {}})
        assert len(warnings) == 1 and "no 'quick' profile" in warnings[0]

    def test_speedups_never_fail_the_run(self):
        baseline = {"profiles": {"quick": tiny_fragment(sim_ips=1000.0)}}
        current = tiny_fragment(sim_ips=5000.0)  # improvement
        assert compare_baselines(current, baseline) == []
