"""Result-store and progress-ledger contracts.

The load-bearing promise: a corrupt cache entry — torn write, garbage,
flipped payload bytes, stale format — is *quarantined and recomputed*,
never raised and never silently returned; and a campaign killed
mid-flight resumes from its ledger without recomputing resolved jobs.
"""

import errno
import json

import pytest

from repro.harness.store import (
    ProgressLedger,
    RealFS,
    ResultStore,
    STORE_FORMAT_VERSION,
    campaign_id,
    canonical_json,
    key_digest,
    payload_checksum,
)

KEY = {"benchmark": "hmmer", "scheme": "dom+ap", "warmup": 300}
PAYLOAD = {"result": {"ipc": 1.25}, "config": {"rob": 192}}


def put_one(tmp_path, key=KEY, payload=PAYLOAD):
    store = ResultStore(tmp_path)
    assert store.put(key, payload)
    return store


class TestAddressing:
    def test_round_trip(self, tmp_path):
        store = put_one(tmp_path)
        assert store.get(KEY) == PAYLOAD
        assert store.counters()["hits"] == 1

    def test_sharded_layout_and_versioned_name(self, tmp_path):
        store = put_one(tmp_path)
        path = store.path_for(KEY)
        assert path.exists()
        assert path.parent.name == key_digest(KEY)[:2]
        assert path.name.startswith(f"v{STORE_FORMAT_VERSION}-")

    def test_namer_is_cosmetic(self, tmp_path):
        named = ResultStore(tmp_path, namer=lambda key: key["benchmark"])
        named.put(KEY, PAYLOAD)
        assert "hmmer" in named.path_for(KEY).name
        assert named.get(KEY) == PAYLOAD

    def test_logically_equal_keys_share_an_entry(self, tmp_path):
        store = put_one(tmp_path)
        reordered = dict(reversed(list(KEY.items())))
        assert store.get(reordered) == PAYLOAD

    def test_miss_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get({"other": 1}) is None
        assert store.counters()["misses"] == 1


class TestQuarantine:
    """Satellite: truncated, garbage, and checksum-mismatched entries are
    quarantined and recomputed — not raised, not silently returned."""

    def corrupt_and_reread(self, tmp_path, mangle):
        store = put_one(tmp_path)
        path = store.path_for(KEY)
        mangle(path)
        fresh = ResultStore(tmp_path)
        value = fresh.get(KEY)
        return fresh, value, path

    def assert_quarantined(self, store, value, path):
        assert value is None  # corrupt entry is a miss, never an answer
        assert store.counters()["quarantined"] == 1
        assert not path.exists()
        assert (store.quarantine_dir / path.name).exists()
        # A recompute writes a fresh entry that reads clean again.
        assert store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD

    def test_truncated_entry(self, tmp_path):
        def mangle(path):
            path.write_text(path.read_text()[: len(path.read_text()) // 3])

        self.assert_quarantined(*self.corrupt_and_reread(tmp_path, mangle))

    def test_garbage_entry(self, tmp_path):
        def mangle(path):
            path.write_text("not json at all \x00\xff")

        self.assert_quarantined(*self.corrupt_and_reread(tmp_path, mangle))

    def test_checksum_mismatch(self, tmp_path):
        def mangle(path):
            entry = json.loads(path.read_text())
            entry["payload"]["result"]["ipc"] = 9.99  # flip payload bytes
            path.write_text(json.dumps(entry))

        self.assert_quarantined(*self.corrupt_and_reread(tmp_path, mangle))

    def test_stale_format_version(self, tmp_path):
        def mangle(path):
            entry = json.loads(path.read_text())
            entry["version"] = STORE_FORMAT_VERSION - 1
            path.write_text(json.dumps(entry))

        self.assert_quarantined(*self.corrupt_and_reread(tmp_path, mangle))

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        def mangle(path):
            entry = json.loads(path.read_text())
            entry["key"] = {"benchmark": "mcf"}
            entry["checksum"] = payload_checksum(entry["payload"])
            path.write_text(json.dumps(entry))

        fresh, value, path = self.corrupt_and_reread(tmp_path, mangle)
        assert value is None
        assert fresh.counters()["quarantined"] == 1

    def test_quarantine_reason_is_logged(self, tmp_path):
        store = put_one(tmp_path)
        store.path_for(KEY).write_text("{ torn")
        fresh = ResultStore(tmp_path)
        fresh.get(KEY)
        assert "torn" in fresh.quarantine_log[0]["reason"]


class FailingFS(RealFS):
    """Every write fails with a persistent-disk errno."""

    def __init__(self, error=errno.ENOSPC):
        self.error = error

    def write_text(self, path, text):
        raise OSError(self.error, "disk full")  # repro: noqa[RPL301] - simulating the OS-level error under test


class TestDegradation:
    def test_degrades_to_memory_after_persistent_errors(self, tmp_path):
        store = ResultStore(tmp_path, fs=FailingFS(), degrade_after=3)
        for index in range(4):
            assert store.put({"job": index}, {"n": index}) is False
        counters = store.counters()
        assert counters["degraded"] is True
        assert counters["write_errors"] >= 3
        # Every result is still readable for the current session.
        for index in range(4):
            assert store.get({"job": index}) == {"n": index}

    def test_degraded_flag_stays_off_for_healthy_store(self, tmp_path):
        store = put_one(tmp_path)
        assert store.counters()["degraded"] is False

    def test_write_failure_never_propagates(self, tmp_path):
        store = ResultStore(tmp_path, fs=FailingFS(errno.EACCES))
        assert store.put(KEY, PAYLOAD) is False  # no raise
        assert store.get(KEY) == PAYLOAD


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(8):
            store.put({"job": index}, {"n": index})
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []

    def test_concurrent_style_writers_agree(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        a.put(KEY, PAYLOAD)
        b.put(KEY, PAYLOAD)
        assert ResultStore(tmp_path).get(KEY) == PAYLOAD


class TestCampaignId:
    def test_order_independent(self):
        keys = [{"job": index} for index in range(5)]
        assert campaign_id(keys) == campaign_id(list(reversed(keys)))

    def test_different_grids_differ(self):
        assert campaign_id([{"job": 1}]) != campaign_id([{"job": 2}])

    def test_canonical_json_is_stable(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestProgressLedger:
    def keys(self, count=4):
        return [{"job": index} for index in range(count)]

    def test_resume_replays_resolved_jobs(self, tmp_path):
        keys = self.keys()
        campaign = campaign_id(keys)
        path = tmp_path / "ledger.jsonl"
        first = ProgressLedger(path, campaign)
        first.record(keys[0], ok=True)
        first.record(keys[1], ok=False, payload={"error_type": "Boom"})
        first.close()

        resumed = ProgressLedger(path, campaign, resume=True)
        assert resumed.resumed
        assert len(resumed) == 2
        assert resumed.get(keys[0])["ok"] is True
        assert resumed.get(keys[1])["payload"]["error_type"] == "Boom"
        assert resumed.get(keys[2]) is None

    def test_torn_final_line_is_skipped(self, tmp_path):
        keys = self.keys()
        campaign = campaign_id(keys)
        path = tmp_path / "ledger.jsonl"
        ledger = ProgressLedger(path, campaign)
        ledger.record(keys[0], ok=True)
        ledger.record(keys[1], ok=True)
        ledger.close()
        # kill -9 mid-append: the last line is half a record.
        text = path.read_text()
        path.write_text(text[: len(text) - 20])

        resumed = ProgressLedger(path, campaign, resume=True)
        assert resumed.resumed
        assert len(resumed) == 1  # the torn record is simply lost
        assert resumed.get(keys[0]) is not None

    def test_campaign_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        old = ProgressLedger(path, campaign_id(self.keys(2)))
        old.record(self.keys(2)[0], ok=True)
        old.close()

        fresh = ProgressLedger(path, campaign_id(self.keys(3)), resume=True)
        assert not fresh.resumed
        assert len(fresh) == 0

    def test_non_resume_truncates(self, tmp_path):
        keys = self.keys(2)
        campaign = campaign_id(keys)
        path = tmp_path / "ledger.jsonl"
        old = ProgressLedger(path, campaign)
        old.record(keys[0], ok=True)
        old.close()
        fresh = ProgressLedger(path, campaign)  # resume not requested
        fresh.close()
        again = ProgressLedger(path, campaign, resume=True)
        assert len(again) == 0
