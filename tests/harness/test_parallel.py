"""Tests for the parallel, persistent experiment runner.

The headline contracts: a pooled sweep is bit-identical to the serial
``ExperimentSession`` for every pair, and a second session pointed at a
warm on-disk cache re-simulates nothing.
"""

import pickle

import pytest

from repro.common.config import small_config
from repro.common.errors import EmptyMeasurementError
from repro.common.stats import RunResult, SimStats
from repro.harness.parallel import ParallelSession, SweepJob, execute_job
from repro.harness.runner import ExperimentSession, run_key

BENCHMARKS = ("hmmer", "mcf", "libquantum")
SCHEMES = ("unsafe", "dom")
WARMUP, MEASURE = 300, 900


@pytest.fixture(scope="module")
def serial_results():
    session = ExperimentSession(warmup=WARMUP, measure=MEASURE)
    return session.sweep(BENCHMARKS, SCHEMES)


class TestParity:
    def test_parallel_matches_serial_bit_identical(self, serial_results, tmp_path):
        """Acceptance: >= 6 pairs with --jobs 4 equal the serial session."""
        session = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=4, cache_dir=tmp_path
        )
        results = session.sweep(BENCHMARKS, SCHEMES)
        assert len(results) == len(serial_results) == 6
        for parallel, serial in zip(results, serial_results):
            assert parallel.benchmark == serial.benchmark
            assert parallel.scheme == serial.scheme
            assert parallel.stats == serial.stats  # every counter, exactly
        assert session.counters()["simulated"] == 6

    def test_result_order_is_request_order(self, tmp_path):
        session = ParallelSession(warmup=WARMUP, measure=MEASURE, jobs=2)
        results = session.sweep(("mcf", "hmmer"), ("dom", "unsafe"))
        labels = [(r.benchmark, r.scheme) for r in results]
        assert labels == [
            ("mcf", "dom"), ("mcf", "unsafe"), ("hmmer", "dom"), ("hmmer", "unsafe")
        ]

    def test_inline_run_matches_pool(self, serial_results):
        session = ParallelSession(warmup=WARMUP, measure=MEASURE, jobs=1)
        result = session.run("hmmer", "unsafe")
        assert result.stats == serial_results[0].stats


class TestDiskCache:
    def test_warm_cache_resimulates_nothing(self, serial_results, tmp_path):
        """Acceptance: second invocation with a warm cache simulates 0."""
        first = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=4, cache_dir=tmp_path
        )
        first.sweep(BENCHMARKS, SCHEMES)
        assert first.simulated == 6

        second = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=4, cache_dir=tmp_path
        )
        results = second.sweep(BENCHMARKS, SCHEMES)
        assert second.simulated == 0
        assert second.disk_hits == 6
        assert second.cached_runs() == 6
        for cached, serial in zip(results, serial_results):
            assert cached.stats == serial.stats

    def test_window_change_misses(self, tmp_path):
        first = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=1, cache_dir=tmp_path
        )
        first.run("hmmer", "unsafe")
        longer = ParallelSession(
            warmup=WARMUP, measure=MEASURE + 500, jobs=1, cache_dir=tmp_path
        )
        longer.run("hmmer", "unsafe")
        assert longer.disk_hits == 0
        assert longer.simulated == 1

    def test_config_change_misses(self, tmp_path):
        first = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=1, cache_dir=tmp_path
        )
        first.run("hmmer", "unsafe")
        small = ParallelSession(
            config=small_config(), warmup=WARMUP, measure=MEASURE,
            jobs=1, cache_dir=tmp_path,
        )
        small.run("hmmer", "unsafe")
        assert small.disk_hits == 0
        assert small.simulated == 1

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        session = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=1, cache_dir=tmp_path
        )
        session.run("hmmer", "unsafe")
        entries = list(tmp_path.rglob("v2-*.json"))
        assert len(entries) == 1
        for path in entries:
            path.write_text("{ torn write")
        fresh = ParallelSession(
            warmup=WARMUP, measure=MEASURE, jobs=1, cache_dir=tmp_path
        )
        result = fresh.run("hmmer", "unsafe")
        assert fresh.simulated == 1
        assert result.stats.committed_instructions > 0
        # The torn entry was quarantined, not silently dropped.
        assert fresh.store.counters()["quarantined"] == 1
        assert list((tmp_path / "quarantine").iterdir())

    def test_no_cache_dir_still_memoizes(self):
        session = ParallelSession(warmup=WARMUP, measure=MEASURE, jobs=1)
        first = session.run("hmmer", "unsafe")
        second = session.run("hmmer", "unsafe")
        assert first is second
        assert session.simulated == 1
        assert session.memo_hits == 1


class TestJobSpec:
    def test_job_is_picklable(self):
        job = SweepJob.build("hmmer", "dom", WARMUP, MEASURE, small_config())
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_execute_job_returns_plain_data(self):
        job = SweepJob.build("hmmer", "unsafe", 200, 600, small_config())
        payload = execute_job(job)
        assert payload["ok"]
        result = RunResult.from_dict(payload["result"])
        assert result.benchmark == "hmmer"
        # The window may stop a commit-group short of the target.
        assert result.stats.committed_instructions >= 590
        assert result.metadata == {"warmup": 200, "measure": 600}

    def test_execute_job_ships_errors_as_data(self, tiny_benchmark):
        # The tiny program halts long before a 5k warmup: the worker must
        # return the typed error as data, not raise (a raise would poison
        # the whole pool).
        payload = execute_job(
            SweepJob.build(tiny_benchmark, "unsafe", 5000, 1000, small_config())
        )
        assert not payload["ok"]
        assert payload["error_type"] == "EmptyMeasurementError"
        assert payload["benchmark"] == tiny_benchmark


@pytest.fixture
def tiny_benchmark(monkeypatch):
    """Register a benchmark that halts after a few dozen instructions
    (shorter than any warmup window used below)."""
    from repro.workloads import profiles

    spec = profiles.WorkloadSpec(
        name="tiny",
        suite="spec2006",
        kernel="stream",
        params={"iterations": 4, "footprint_words": 64},
    )
    monkeypatch.setitem(profiles.PROFILES_BY_NAME, "tiny", spec)
    return "tiny"


class TestErrorHandling:
    """Error paths run inline (jobs=1) so the monkeypatched registry is
    visible; the pool path shares the exact same execute_job code."""

    def test_run_raises_typed_error(self, tiny_benchmark):
        session = ParallelSession(
            config=small_config(), warmup=5000, measure=1000, jobs=1
        )
        with pytest.raises(EmptyMeasurementError) as excinfo:
            session.run(tiny_benchmark, "unsafe")
        assert excinfo.value.benchmark == tiny_benchmark
        assert excinfo.value.scheme == "unsafe"
        assert "shorter than warmup" in str(excinfo.value)

    def test_sweep_skip_errors_reports_and_continues(self, tiny_benchmark):
        session = ParallelSession(
            config=small_config(), warmup=2000, measure=1000, jobs=1
        )
        results = session.sweep(
            (tiny_benchmark, "hmmer"), ("unsafe",), skip_errors=True
        )
        # hmmer survives, the tiny program is reported, the sweep lives.
        assert [r.benchmark for r in results] == ["hmmer"]
        assert len(session.skipped) == 1
        assert session.skipped[0].benchmark == tiny_benchmark
        assert "shorter than warmup" in session.skipped[0].message

    def test_sweep_without_skip_errors_raises(self, tiny_benchmark):
        session = ParallelSession(
            config=small_config(), warmup=2000, measure=1000, jobs=1
        )
        with pytest.raises(EmptyMeasurementError):
            session.sweep((tiny_benchmark,), ("unsafe",))

    def test_failures_memoized_not_resimulated(self, tiny_benchmark):
        session = ParallelSession(
            config=small_config(), warmup=5000, measure=1000, jobs=1
        )
        for _ in range(3):
            with pytest.raises(EmptyMeasurementError):
                session.run(tiny_benchmark, "unsafe")
        assert session.simulated == 1


class TestKeySharing:
    def test_memo_and_disk_use_the_same_key(self, tmp_path):
        """ExperimentSession's memo key and ParallelSession's disk key
        are both run_key(): same fields, same fingerprint."""
        serial = ExperimentSession(warmup=WARMUP, measure=MEASURE)
        parallel = ParallelSession(warmup=WARMUP, measure=MEASURE, jobs=1)
        expected = run_key("hmmer", "dom", WARMUP, MEASURE, serial.config)
        assert serial._key("hmmer", "dom") == expected
        assert parallel._key("hmmer", "dom") == expected
