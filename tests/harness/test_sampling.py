"""Tests for the multi-window sampling harness."""

import pytest

from repro.harness.sampling import (
    SampledResult,
    normalized_with_error,
    sample_benchmark,
)


class TestSampledResult:
    def test_mean_and_stdev(self):
        result = SampledResult("b", "s", 100, ipcs=[1.0, 2.0, 3.0])
        assert result.mean == pytest.approx(2.0)
        assert result.stdev == pytest.approx(1.0)
        assert result.relative_stdev == pytest.approx(0.5)

    def test_single_window_has_zero_stdev(self):
        result = SampledResult("b", "s", 100, ipcs=[1.5])
        assert result.stdev == 0.0

    def test_format_line(self):
        result = SampledResult("hmmer", "dom", 500, ipcs=[1.0, 1.2])
        text = result.format_line()
        assert "hmmer/dom" in text
        assert "2 windows of 500" in text


class TestSampling:
    def test_collects_requested_windows(self):
        result = sample_benchmark(
            "hmmer", "unsafe", windows=3, window_instructions=1500, warmup=800
        )
        assert len(result.ipcs) == 3
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_steady_state_is_stable(self):
        """Consecutive warm windows of a regular kernel must agree within
        a few percent — the measurement-stability property the figure
        windows rely on."""
        result = sample_benchmark(
            "hmmer", "unsafe", windows=4, window_instructions=5000, warmup=6000
        )
        assert result.relative_stdev < 0.08

    def test_invalid_window_count(self):
        with pytest.raises(ValueError):
            sample_benchmark("hmmer", "unsafe", windows=0)

    def test_normalized_with_error(self):
        ratio, spread = normalized_with_error(
            "hmmer", "dom", windows=3, window_instructions=1500, warmup=1000
        )
        assert 0.2 < ratio <= 1.1
        assert spread >= 0.0
