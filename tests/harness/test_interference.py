"""Coherence-interference stress: §4.5 under load, for every scheme."""

import pytest

from repro.harness.interference import (
    InterferenceEvent,
    InterferenceInjector,
    periodic_interference,
)
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.kernels import STREAM_BASE, stream_kernel

from tests.conftest import ALL_SCHEME_NAMES


def victim(iterations=1 << 20, footprint_words=1 << 10):
    return stream_kernel(
        iterations=iterations, footprint_words=footprint_words, seed=17
    )


class TestScheduleConstruction:
    def test_periodic_schedule(self):
        events = periodic_interference([0x100, 0x200], start=50, period=10, count=5)
        assert len(events) == 5
        assert [e.cycle for e in events] == [50, 60, 70, 80, 90]
        assert all(e.address in (0x100, 0x200) for e in events)

    def test_values_optional(self):
        plain = periodic_interference([0x100], count=3)
        valued = periodic_interference([0x100], count=3, values=True)
        assert all(e.value is None for e in plain)
        assert all(e.value is not None for e in valued)

    def test_empty_addresses_rejected(self):
        with pytest.raises(ValueError):
            periodic_interference([])

    def test_deterministic_with_seed(self):
        a = periodic_interference([1, 2, 3], count=10, seed=4)
        b = periodic_interference([1, 2, 3], count=10, seed=4)
        assert [(e.cycle, e.address) for e in a] == [
            (e.cycle, e.address) for e in b
        ]


class TestInterferenceUnderLoad:
    @pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
    def test_invalidation_storm_preserves_correctness(self, scheme):
        """Invalidations (without data changes) must never change the
        architectural result — only timing."""
        program = victim()
        reference = Core(program, make_scheme(scheme))
        reference.run(max_instructions=4000)
        lines = [STREAM_BASE + 64 * k for k in range(16)]
        stressed = Core(victim(), make_scheme(scheme))
        injector = InterferenceInjector(
            stressed, periodic_interference(lines, start=40, period=60, count=60)
        )
        injector.run(max_instructions=4000)
        assert injector.injected > 10
        assert stressed.arch.read_reg(3) == reference.arch.read_reg(3)

    def test_invalidations_slow_the_victim(self):
        """Losing warm lines costs refetches: cycles must not decrease."""
        program = victim(footprint_words=1 << 8)  # hot, fully L1-resident
        quiet = Core(program, make_scheme("unsafe"))
        quiet.run(max_instructions=3000)
        lines = [STREAM_BASE + 64 * k for k in range(8)]
        noisy = Core(victim(footprint_words=1 << 8), make_scheme("unsafe"))
        injector = InterferenceInjector(
            noisy, periodic_interference(lines, start=20, period=25, count=120)
        )
        injector.run(max_instructions=3000)
        assert noisy.stats.cycles >= quiet.stats.cycles

    def test_interference_with_doppelgangers_in_flight(self):
        """The §4.5 path under stress: predicted addresses get matched by
        invalidations while doppelgangers are in flight; the run must
        stay architecturally correct."""
        program = victim()
        reference = Core(program, make_scheme("dom+ap"))
        reference.run(max_instructions=4000)
        lines = [STREAM_BASE + 64 * k for k in range(32)]
        stressed = Core(victim(), make_scheme("dom+ap"))
        injector = InterferenceInjector(
            stressed, periodic_interference(lines, start=30, period=15, count=200)
        )
        injector.run(max_instructions=4000)
        assert stressed.arch.read_reg(3) == reference.arch.read_reg(3)

    def test_peer_store_values_become_visible(self):
        """An invalidation paired with a memory update: loads that re-fetch
        the line observe the peer's value (no stale preload survives)."""
        from repro.isa.builder import CodeBuilder

        b = CodeBuilder()
        b.set_memory(0x4000, 5)
        b.li(1, 400)
        b.li(2, 0)
        b.li(3, 0)
        b.label("loop")
        b.load(4, 0, disp=0x4000)
        b.add(3, 3, 4)
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        b.store(3, 0, disp=8)
        b.halt()
        core = Core(b.build(), make_scheme("stt+ap"))
        injector = InterferenceInjector(
            core, [InterferenceEvent(cycle=200, address=0x4000, value=9)]
        )
        injector.run()
        assert core.halted
        checksum = core.arch.read_mem(8)
        # k iterations read 5, the rest read 9, for some 0 <= k <= 400 —
        # and since the event fires at cycle 200, some of each occurred.
        possible = {5 * k + 9 * (400 - k) for k in range(401)}
        assert checksum in possible
        assert checksum not in (5 * 400, 9 * 400), "peer store never observed"
