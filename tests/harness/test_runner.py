"""Tests for the experiment runner and session."""

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError, EmptyMeasurementError
from repro.common.stats import RunResult, SimStats
from repro.harness.runner import (
    BASELINE_SCHEME,
    FIGURE_SCHEMES,
    ExperimentSession,
    run_benchmark,
    run_key,
    run_program,
)
from repro.workloads.kernels import stream_kernel


class TestRunProgram:
    def test_measurement_window_deltas(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12)
        result = run_program(program, "unsafe", warmup=1000, measure=2000)
        stats = result.stats
        assert 2000 <= stats.committed_instructions <= 2100
        assert stats.cycles > 0
        assert result.metadata["warmup"] == 1000

    def test_zero_warmup_allowed(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12)
        result = run_program(program, "unsafe", warmup=0, measure=1500)
        assert result.stats.committed_instructions >= 1500

    def test_warmup_excluded_from_counters(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12)
        short = run_program(program, "unsafe", warmup=4000, measure=1000)
        # Measurement counters reflect only the window, not the warmup.
        assert short.stats.committed_instructions <= 1100

    def test_program_shorter_than_warmup_raises_typed_error(self):
        """Regression: a program that halts during warmup used to return
        an all-zero delta, surfacing later as a confusing zero-IPC crash."""
        tiny = stream_kernel(iterations=4, footprint_words=64)
        with pytest.raises(EmptyMeasurementError) as excinfo:
            run_program(tiny, "unsafe", warmup=5000, measure=1000)
        assert "shorter than warmup window" in str(excinfo.value)
        assert excinfo.value.benchmark == "stream"
        assert excinfo.value.scheme == "unsafe"

    def test_short_program_with_room_to_measure_is_fine(self):
        # Halting *inside* the measurement window is a legitimate run.
        tiny = stream_kernel(iterations=16, footprint_words=64)
        result = run_program(tiny, "unsafe", warmup=0, measure=100_000)
        assert result.stats.committed_instructions > 0


class TestRunBenchmark:
    def test_labels_attached(self):
        result = run_benchmark("hmmer", "dom+ap", warmup=500, measure=1500)
        assert result.benchmark == "hmmer"
        assert result.scheme == "dom+ap"

    def test_unknown_benchmark_fails_fast(self):
        with pytest.raises(ConfigError):
            run_benchmark("nonexistent", "unsafe")


class TestExperimentSession:
    def test_memoization(self):
        session = ExperimentSession(warmup=500, measure=1200)
        first = session.run("hmmer", "unsafe")
        second = session.run("hmmer", "unsafe")
        assert first is second
        assert session.cached_runs() == 1

    def test_normalized_ipc_baseline_is_one(self):
        session = ExperimentSession(warmup=500, measure=1200)
        assert session.normalized_ipc("hmmer", BASELINE_SCHEME) == pytest.approx(1.0)

    def test_sweep_covers_grid(self):
        session = ExperimentSession(warmup=500, measure=1000)
        results = session.sweep(["hmmer"], ["unsafe", "dom"])
        assert len(results) == 2
        assert session.cached_runs() == 2

    def test_figure_scheme_order(self):
        assert FIGURE_SCHEMES == ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap")


class TestSessionCacheKey:
    """Regression tests: the memo used to key on (benchmark, scheme) only,
    so mutating the session after a run silently replayed stale results."""

    def test_measure_change_invalidates_memo(self):
        session = ExperimentSession(warmup=400, measure=900)
        short = session.run("hmmer", "unsafe")
        session.measure = 1800
        long = session.run("hmmer", "unsafe")
        assert long is not short
        assert long.stats.committed_instructions > short.stats.committed_instructions
        assert session.cached_runs() == 2

    def test_warmup_change_invalidates_memo(self):
        session = ExperimentSession(warmup=400, measure=900)
        first = session.run("hmmer", "unsafe")
        session.warmup = 1200
        second = session.run("hmmer", "unsafe")
        assert second is not first

    def test_config_change_invalidates_memo(self):
        session = ExperimentSession(warmup=400, measure=900)
        default = session.run("hmmer", "unsafe")
        session.config = small_config()
        small = session.run("hmmer", "unsafe")
        assert small is not default
        # The scaled-down core is genuinely slower: stale replay would
        # have returned the default-config cycle count.
        assert small.stats.cycles != default.stats.cycles

    def test_key_includes_windows_and_fingerprint(self):
        session = ExperimentSession(warmup=400, measure=900)
        key = session._key("hmmer", "dom")
        assert key == run_key("hmmer", "dom", 400, 900, session.config)
        assert key[2:4] == (400, 900)
        assert key[4] == session.config.fingerprint()

    def test_unchanged_session_still_memoizes(self):
        session = ExperimentSession(warmup=400, measure=900)
        assert session.run("hmmer", "unsafe") is session.run("hmmer", "unsafe")
        assert session.cached_runs() == 1


class TestNormalizedIpcErrors:
    def test_zero_ipc_baseline_raises_typed_error(self):
        """Regression: a zero-IPC baseline used to raise a bare
        ZeroDivisionError that aborted a whole figure sweep."""
        session = ExperimentSession(warmup=400, measure=900)
        key = session._key("hmmer", BASELINE_SCHEME)
        session._cache[key] = RunResult(
            benchmark="hmmer", scheme=BASELINE_SCHEME, stats=SimStats()
        )
        with pytest.raises(EmptyMeasurementError) as excinfo:
            session.normalized_ipc("hmmer", "dom")
        assert excinfo.value.benchmark == "hmmer"
        assert excinfo.value.scheme == BASELINE_SCHEME
