"""Tests for the experiment runner and session."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.runner import (
    BASELINE_SCHEME,
    FIGURE_SCHEMES,
    ExperimentSession,
    run_benchmark,
    run_program,
)
from repro.workloads.kernels import stream_kernel


class TestRunProgram:
    def test_measurement_window_deltas(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12)
        result = run_program(program, "unsafe", warmup=1000, measure=2000)
        stats = result.stats
        assert 2000 <= stats.committed_instructions <= 2100
        assert stats.cycles > 0
        assert result.metadata["warmup"] == 1000

    def test_zero_warmup_allowed(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12)
        result = run_program(program, "unsafe", warmup=0, measure=1500)
        assert result.stats.committed_instructions >= 1500

    def test_warmup_excluded_from_counters(self):
        program = stream_kernel(iterations=1 << 20, footprint_words=1 << 12)
        short = run_program(program, "unsafe", warmup=4000, measure=1000)
        # Measurement counters reflect only the window, not the warmup.
        assert short.stats.committed_instructions <= 1100


class TestRunBenchmark:
    def test_labels_attached(self):
        result = run_benchmark("hmmer", "dom+ap", warmup=500, measure=1500)
        assert result.benchmark == "hmmer"
        assert result.scheme == "dom+ap"

    def test_unknown_benchmark_fails_fast(self):
        with pytest.raises(ConfigError):
            run_benchmark("nonexistent", "unsafe")


class TestExperimentSession:
    def test_memoization(self):
        session = ExperimentSession(warmup=500, measure=1200)
        first = session.run("hmmer", "unsafe")
        second = session.run("hmmer", "unsafe")
        assert first is second
        assert session.cached_runs() == 1

    def test_normalized_ipc_baseline_is_one(self):
        session = ExperimentSession(warmup=500, measure=1200)
        assert session.normalized_ipc("hmmer", BASELINE_SCHEME) == pytest.approx(1.0)

    def test_sweep_covers_grid(self):
        session = ExperimentSession(warmup=500, measure=1000)
        results = session.sweep(["hmmer"], ["unsafe", "dom"])
        assert len(results) == 2
        assert session.cached_runs() == 2

    def test_figure_scheme_order(self):
        assert FIGURE_SCHEMES == ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap")
