"""Tests for the profiling layer (``repro profile``) and best-of-N
timing in the perf bench.

The profiling layer is the instrument the busy-path optimization pass
is steered by, so its own contracts need pinning: wrappers must come off
the :class:`Core` class cleanly, the stage report must attribute wall
time to the real phase methods, and both report modes must be
JSON-serializable with a versioned shape.
"""

import json

import pytest

from repro.common.errors import ReproError
from repro.harness import profiling
from repro.harness.perfbench import (
    DEFAULT_SAMPLES,
    bench_pair,
    environment_fingerprint,
    run_bench,
)
from repro.harness.profiling import (
    PROFILE_FORMAT_VERSION,
    STAGE_METHODS,
    StageAccounting,
    profile_cprofile,
    profile_stages,
    render_stage_report,
    write_report,
)
from repro.pipeline.core import Core


class TestStageAccounting:
    def test_wrappers_installed_and_removed(self):
        originals = {name: getattr(Core, name) for name in STAGE_METHODS}
        with StageAccounting() as accounting:
            for name in STAGE_METHODS:
                wrapped = getattr(Core, name)
                assert wrapped is not originals[name]
                assert wrapped.__wrapped__ is originals[name]
        for name in STAGE_METHODS:
            assert getattr(Core, name) is originals[name]
        assert accounting.total_seconds() == 0.0  # nothing ran

    def test_wrappers_removed_on_error(self):
        originals = {name: getattr(Core, name) for name in STAGE_METHODS}
        with pytest.raises(RuntimeError):
            with StageAccounting():
                raise RuntimeError("boom")
        for name in STAGE_METHODS:
            assert getattr(Core, name) is originals[name]


class TestStageReport:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_stages("quick")

    def test_shape_and_version(self, report):
        assert report["version"] == PROFILE_FORMAT_VERSION
        assert report["mode"] == "stages"
        assert report["profile"] == "quick"
        assert {row["stage"] for row in report["stages"]} == set(STAGE_METHODS)
        assert report["totals"]["pairs"] == len(report["pairs"])

    def test_attributes_real_wall_time(self, report):
        totals = report["totals"]
        assert totals["wall"] > 0
        assert 0 < totals["staged_seconds"]
        assert totals["instructions"] > 0
        # The busy phases must have been hit; a zero-call dispatch would
        # mean the wrappers missed the event loop's late binding.
        calls = {row["stage"]: row["calls"] for row in report["stages"]}
        assert calls["_dispatch"] > 0
        assert calls["_commit"] > 0

    def test_render_and_json_round_trip(self, report, tmp_path):
        text = render_stage_report(report)
        assert "stage profile over the quick grid" in text
        assert "_dispatch" in text
        path = tmp_path / "profile.json"
        write_report(str(path), report)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report)
        )


class TestCProfileMode:
    def test_top_rows_sorted_by_tottime(self):
        report = profile_cprofile("quick", top=10)
        assert report["mode"] == "cprofile"
        assert len(report["top"]) <= 10
        times = [row["tottime"] for row in report["top"]]
        assert times == sorted(times, reverse=True)
        assert "function calls" in report["text"]


class TestBestOfN:
    def test_zero_samples_rejected(self):
        with pytest.raises(ReproError):
            bench_pair("hmmer", "unsafe", 200, samples=0)

    def test_samples_recorded_in_fragment_and_environment(self):
        fragment = run_bench("quick", samples=1)
        assert fragment["timing_samples"] == 1
        assert environment_fingerprint(samples=5)["timing_samples"] == 5
        assert environment_fingerprint()["timing_samples"] == DEFAULT_SAMPLES

    def test_single_sample_pair_still_verified(self):
        record = bench_pair("hmmer", "unsafe", 200, samples=1)
        assert record.instructions > 0
        assert record.wall_event > 0
