"""Unit tests for the two-pass assembler."""

import pytest

from repro.common.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode


class TestBasicParsing:
    def test_empty_source(self):
        assert assemble("") == []

    def test_comments_and_blanks_ignored(self):
        source = """
        # a comment
        nop  ; trailing comment
        ; full line comment
        """
        instructions = assemble(source)
        assert len(instructions) == 1
        assert instructions[0].opcode is Opcode.NOP

    def test_li(self):
        (inst,) = assemble("li r5, 42")
        assert inst.opcode is Opcode.LI
        assert inst.rd == 5
        assert inst.imm == 42

    def test_negative_and_hex_immediates(self):
        insts = assemble("addi r1, r2, -8\nli r3, 0x1000")
        assert insts[0].imm == -8
        assert insts[1].imm == 0x1000

    def test_three_register_form(self):
        (inst,) = assemble("xor r1, r2, r3")
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 2, 3)

    def test_load_store_memory_operands(self):
        load, store = assemble("load r1, [r2 + 16]\nstore r3, [r4 - 8]")
        assert (load.rd, load.rs1, load.imm) == (1, 2, 16)
        assert (store.rs2, store.rs1, store.imm) == (3, 4, -8)

    def test_memory_operand_without_displacement(self):
        (load,) = assemble("load r1, [r2]")
        assert load.imm == 0

    def test_case_insensitive_mnemonics_registers(self):
        (inst,) = assemble("ADD r1, R2, r3")
        assert inst.opcode is Opcode.ADD


class TestLabels:
    def test_forward_and_backward_labels(self):
        source = """
        start:
            beq r1, r0, end
            jmp start
        end:
            halt
        """
        insts = assemble(source)
        assert insts[0].imm == 2  # end
        assert insts[1].imm == 0  # start

    def test_label_on_same_line_as_instruction(self):
        insts = assemble("loop: addi r1, r1, 1\njmp loop")
        assert insts[1].imm == 0

    def test_numeric_branch_target(self):
        (inst,) = assemble("jmp 7")
        assert inst.imm == 7

    def test_multiple_labels_same_position(self):
        insts = assemble("a: b: nop\njmp a\njmp b")
        assert insts[1].imm == 0
        assert insts[2].imm == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x: nop\nx: nop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError, match="unknown label"):
            assemble("jmp nowhere")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("li r99, 1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="bad memory operand"):
            assemble("load r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus r1")


class TestRoundTrip:
    def test_assemble_disassemble_reassemble(self):
        source = "\n".join(
            [
                "li r1, 10",
                "addi r2, r1, 5",
                "mul r3, r1, r2",
                "load r4, [r3 + 8]",
                "store r4, [r1 + 0]",
                "beq r4, r0, 7",
                "jmp 0",
                "halt",
            ]
        )
        first = assemble(source)
        text = "\n".join(inst.disassemble() for inst in first)
        second = assemble(text)
        assert first == second
