"""Dedicated tests for the CodeBuilder front-end."""

import pytest

from repro.common.errors import AssemblyError
from repro.isa.builder import CodeBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program


class TestEmitters:
    def test_every_alu_emitter(self):
        b = CodeBuilder()
        emitters = [
            ("add", Opcode.ADD), ("sub", Opcode.SUB), ("mul", Opcode.MUL),
            ("and_", Opcode.AND), ("or_", Opcode.OR), ("xor", Opcode.XOR),
            ("shl", Opcode.SHL), ("shr", Opcode.SHR),
        ]
        for name, _ in emitters:
            getattr(b, name)(1, 2, 3)
        b.halt()
        program = b.build()
        for (name, opcode), inst in zip(emitters, program.instructions):
            assert inst.opcode is opcode
            assert (inst.rd, inst.rs1, inst.rs2) == (1, 2, 3)

    def test_every_immediate_emitter(self):
        b = CodeBuilder()
        emitters = [
            ("addi", Opcode.ADDI), ("muli", Opcode.MULI), ("andi", Opcode.ANDI),
            ("xori", Opcode.XORI), ("shli", Opcode.SHLI), ("shri", Opcode.SHRI),
        ]
        for name, _ in emitters:
            getattr(b, name)(1, 2, 9)
        b.halt()
        for (name, opcode), inst in zip(emitters, b.build().instructions):
            assert inst.opcode is opcode
            assert inst.imm == 9

    def test_branch_emitters_with_numeric_targets(self):
        b = CodeBuilder()
        b.beq(1, 2, 10)
        b.bne(1, 2, 11)
        b.blt(1, 2, 12)
        b.bge(1, 2, 13)
        b.jmp(14)
        b.nop(9)
        b.halt()
        program = b.build()
        assert [i.imm for i in program.instructions[:5]] == [10, 11, 12, 13, 14]

    def test_nop_count(self):
        b = CodeBuilder()
        b.nop(5)
        assert b.here == 5

    def test_memory_operands(self):
        b = CodeBuilder()
        b.load(1, base=2, disp=-8)
        b.store(3, base=4, disp=16)
        b.halt()
        load, store, _ = b.build().instructions
        assert (load.rd, load.rs1, load.imm) == (1, 2, -8)
        assert (store.rs2, store.rs1, store.imm) == (3, 4, 16)


class TestLabels:
    def test_duplicate_label_rejected_immediately(self):
        b = CodeBuilder()
        b.label("x")
        with pytest.raises(AssemblyError, match="duplicate"):
            b.label("x")

    def test_label_returns_position(self):
        b = CodeBuilder()
        b.nop(3)
        assert b.label("late") == 3

    def test_forward_reference_resolved_at_build(self):
        b = CodeBuilder()
        b.jmp("end")
        b.nop(4)
        b.label("end")
        b.halt()
        program = b.build()
        assert program.instructions[0].imm == 5

    def test_build_is_repeatable(self):
        b = CodeBuilder()
        b.li(1, 5)
        b.jmp("end")
        b.label("end")
        b.halt()
        first = b.build()
        second = b.build()
        assert first.instructions == second.instructions


class TestBuildValidation:
    """``build()`` rejects malformed programs with a named instruction."""

    def test_branch_target_past_end_rejected(self):
        b = CodeBuilder()
        b.beq(1, 2, 10)
        b.halt()
        with pytest.raises(AssemblyError, match="branch target 10 outside"):
            b.build(name="bad-branch")

    def test_branch_target_program_length_is_allowed(self):
        # Target == len is an explicit fall-off-the-end exit, which the
        # interpreter defines; it must assemble.
        b = CodeBuilder()
        b.beq(1, 2, 2)
        b.halt()
        program = b.build()
        assert program.instructions[0].imm == 2

    def test_negative_branch_target_rejected(self):
        b = CodeBuilder()
        b.jmp(-1)
        b.halt()
        with pytest.raises(AssemblyError, match="branch target -1"):
            b.build()

    def test_huge_displacement_rejected(self):
        b = CodeBuilder()
        b.load(1, base=2, disp=1 << 53)
        b.halt()
        with pytest.raises(AssemblyError, match="displacement"):
            b.build()

    def test_error_names_instruction_and_program(self):
        b = CodeBuilder()
        b.nop()
        b.store(3, base=4, disp=-(1 << 60))
        b.halt()
        with pytest.raises(AssemblyError) as excinfo:
            b.build(name="diag")
        assert "diag: instruction 1" in str(excinfo.value)
        assert excinfo.value.line == 1

    def test_register_init_out_of_range_rejected(self):
        b = CodeBuilder()
        b.set_register(32, 1)
        b.halt()
        with pytest.raises(AssemblyError, match="register r32"):
            b.build()

    def test_memory_init_outside_address_space_rejected(self):
        b = CodeBuilder()
        b.set_memory(1 << 64, 1)
        b.halt()
        with pytest.raises(AssemblyError, match="64-bit address space"):
            b.build()

    def test_oversized_li_immediate_rejected(self):
        b = CodeBuilder()
        b.li(1, 1 << 64)
        b.halt()
        with pytest.raises(AssemblyError, match="does not fit in 64 bits"):
            b.build()


class TestInitialState:
    def test_registers_and_memory(self):
        b = CodeBuilder()
        b.set_register(4, 99)
        b.set_memory(0x123, 7)  # unaligned: stored word-aligned
        b.halt()
        state = b.build().initial_state()
        assert state.read_reg(4) == 99
        assert state.read_mem(0x120) == 7

    def test_program_name(self):
        b = CodeBuilder()
        b.halt()
        assert b.build(name="zebra").name == "zebra"

    def test_runs_on_interpreter_and_core(self):
        from repro.pipeline.core import Core
        from repro.schemes import make_scheme

        b = CodeBuilder()
        b.set_register(1, 6)
        b.set_register(2, 7)
        b.mul(3, 1, 2)
        b.store(3, 0, disp=8)
        b.halt()
        program = b.build()
        assert program.interpret().state.read_mem(8) == 42
        core = Core(program, make_scheme("unsafe"))
        core.run()
        assert core.arch.read_mem(8) == 42
