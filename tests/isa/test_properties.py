"""Property-based tests for the ISA layer (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.instructions import WORD_MASK, Opcode, branch_taken, evaluate_alu
from repro.isa.program import ArchState

WORDS = st.integers(min_value=0, max_value=WORD_MASK)


class TestALUProperties:
    @given(WORDS, WORDS)
    def test_results_always_in_range(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
                   Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MOV, Opcode.LI):
            result = evaluate_alu(op, a, b)
            assert 0 <= result <= WORD_MASK

    @given(WORDS, WORDS)
    def test_add_sub_inverse(self, a, b):
        assert evaluate_alu(Opcode.SUB, evaluate_alu(Opcode.ADD, a, b), b) == a

    @given(WORDS, WORDS)
    def test_xor_self_inverse(self, a, b):
        assert evaluate_alu(Opcode.XOR, evaluate_alu(Opcode.XOR, a, b), b) == a

    @given(WORDS)
    def test_and_identity_and_zero(self, a):
        assert evaluate_alu(Opcode.AND, a, WORD_MASK) == a
        assert evaluate_alu(Opcode.AND, a, 0) == 0

    @given(WORDS, WORDS)
    def test_commutativity(self, a, b):
        for op in (Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR):
            assert evaluate_alu(op, a, b) == evaluate_alu(op, b, a)


class TestBranchProperties:
    @given(WORDS, WORDS)
    def test_beq_bne_complementary(self, a, b):
        assert branch_taken(Opcode.BEQ, a, b) != branch_taken(Opcode.BNE, a, b)

    @given(WORDS, WORDS)
    def test_blt_bge_complementary(self, a, b):
        assert branch_taken(Opcode.BLT, a, b) != branch_taken(Opcode.BGE, a, b)

    @given(WORDS)
    def test_blt_irreflexive(self, a):
        assert not branch_taken(Opcode.BLT, a, a)
        assert branch_taken(Opcode.BGE, a, a)


class TestArchStateProperties:
    @given(st.integers(min_value=0, max_value=WORD_MASK), WORDS)
    def test_memory_read_back(self, address, value):
        state = ArchState()
        state.write_mem(address, value)
        assert state.read_mem(address) == value

    @given(st.integers(min_value=1, max_value=31), WORDS)
    def test_register_read_back(self, reg, value):
        state = ArchState()
        state.write_reg(reg, value)
        assert state.read_reg(reg) == value

    @given(st.integers(min_value=0, max_value=1 << 20), WORDS, WORDS)
    def test_same_word_aliases(self, address, v1, v2):
        state = ArchState()
        aligned = address & ~7
        state.write_mem(aligned, v1)
        state.write_mem(aligned + 7, v2)  # same word
        assert state.read_mem(aligned) == v2


class TestAssemblerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_disassemble_reassemble_fixpoint(self, seed):
        """Random instruction soup survives a disassemble/assemble cycle."""
        rng = random.Random(seed)
        lines = []
        for _ in range(rng.randrange(1, 25)):
            choice = rng.random()
            rd, ra, rb = (rng.randrange(32) for _ in range(3))
            if choice < 0.3:
                lines.append(f"add r{rd}, r{ra}, r{rb}")
            elif choice < 0.5:
                lines.append(f"addi r{rd}, r{ra}, {rng.randrange(-999, 999)}")
            elif choice < 0.65:
                lines.append(f"load r{rd}, [r{ra} + {rng.randrange(0, 512)}]")
            elif choice < 0.8:
                lines.append(f"store r{rb}, [r{ra} + {rng.randrange(0, 512)}]")
            else:
                lines.append(f"li r{rd}, {rng.randrange(0, 1 << 16)}")
        lines.append("halt")
        first = assemble("\n".join(lines))
        second = assemble("\n".join(i.disassemble() for i in first))
        assert first == second
