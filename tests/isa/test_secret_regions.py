"""Secret regions as a first-class Program field.

``secret_regions`` is the single source of truth for "what must not
leak": the builder's ``mark_secret`` records it, serialization round-
trips it, and both the dynamic noninterference oracle and the static
specflow analyzer read it from the same place.
"""

import pytest

from repro.common.errors import AssemblyError
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program


def build(mark=True):
    b = CodeBuilder()
    b.set_memory(0x1000, 42)
    if mark:
        b.mark_secret(0x1000)
    b.li(1, 1)
    b.halt()
    return b.build(name="secretful")


class TestDeclaration:
    def test_mark_secret_records_a_region(self):
        program = build()
        assert program.secret_regions == ((0x1000, 0x1008),)

    def test_secret_words_enumerates_word_addresses(self):
        b = CodeBuilder()
        b.mark_secret(0x2000, words=3)
        b.halt()
        program = b.build(name="p")
        assert program.secret_words() == (0x2000, 0x2008, 0x2010)

    def test_unaligned_mark_is_word_aligned(self):
        b = CodeBuilder()
        b.mark_secret(0x1004)
        b.halt()
        program = b.build(name="p")
        assert program.secret_regions == ((0x1000, 0x1008),)

    def test_zero_words_is_an_assembly_error(self):
        b = CodeBuilder()
        with pytest.raises(AssemblyError):
            b.mark_secret(0x1000, words=0)

    def test_regions_sorted_and_normalized(self):
        b = CodeBuilder()
        b.mark_secret(0x3000)
        b.mark_secret(0x1000)
        b.halt()
        program = b.build(name="p")
        assert program.secret_regions == ((0x1000, 0x1008), (0x3000, 0x3008))


class TestRoundTrip:
    def test_to_dict_from_dict_preserves_regions(self):
        program = build()
        clone = Program.from_dict(program.to_dict())
        assert clone.secret_regions == program.secret_regions
        assert clone.to_dict() == program.to_dict()

    def test_from_dict_defaults_to_no_regions(self):
        payload = build(mark=False).to_dict()
        payload.pop("secret_regions", None)
        clone = Program.from_dict(payload)
        assert clone.secret_regions == ()


class TestMemTrace:
    def test_trace_records_loads_and_stores(self):
        b = CodeBuilder()
        b.set_memory(0x1000, 7)
        b.li(1, 0x1000)
        b.load(2, 1)
        b.store(2, 1, disp=8)
        b.halt()
        program = b.build(name="p")
        result = program.interpret(trace_mem=True)
        assert (1, 0x1000, False) in result.mem_trace
        assert (2, 0x1008, True) in result.mem_trace

    def test_trace_disabled_by_default(self):
        assert build().interpret().mem_trace is None
