"""Tests for Program and the functional (in-order) interpreter."""

import pytest

from repro.common.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.isa.builder import CodeBuilder
from repro.isa.program import ArchState, Program


class TestArchState:
    def test_r0_always_zero(self):
        state = ArchState()
        state.write_reg(0, 999)
        assert state.read_reg(0) == 0

    def test_register_values_masked_to_64_bits(self):
        state = ArchState()
        state.write_reg(1, 1 << 64)
        assert state.read_reg(1) == 0

    def test_memory_word_aligned(self):
        state = ArchState()
        state.write_mem(0x1003, 7)  # unaligned address
        assert state.read_mem(0x1000) == 7
        assert state.read_mem(0x1007) == 7  # same word

    def test_unwritten_memory_reads_zero(self):
        assert ArchState().read_mem(0xDEAD000) == 0

    def test_copy_is_independent(self):
        state = ArchState()
        state.write_reg(1, 5)
        clone = state.copy()
        clone.write_reg(1, 6)
        assert state.read_reg(1) == 5


class TestInterpreter:
    def test_straight_line(self):
        program = Program(assemble("li r1, 2\nli r2, 3\nadd r3, r1, r2\nhalt"))
        result = program.interpret()
        assert result.halted
        assert result.state.read_reg(3) == 5
        assert result.instructions_executed == 4

    def test_loop_sum(self):
        source = """
            li r1, 10
            li r2, 0
            li r3, 0
        loop:
            add r3, r3, r2
            addi r2, r2, 1
            blt r2, r1, loop
            store r3, [r0 + 8]
            halt
        """
        result = Program(assemble(source)).interpret()
        assert result.state.read_mem(8) == sum(range(10))

    def test_branch_trace_records_conditional_outcomes(self):
        source = """
            li r1, 3
            li r2, 0
        loop:
            addi r2, r2, 1
            blt r2, r1, loop
            halt
        """
        result = Program(assemble(source)).interpret()
        assert result.branch_trace == [True, True, False]

    def test_memory_initial_image(self):
        program = Program(
            assemble("load r1, [r0 + 64]\nhalt"), initial_memory={64: 77}
        )
        assert program.interpret().state.read_reg(1) == 77

    def test_initial_registers(self):
        program = Program(assemble("addi r2, r1, 1\nhalt"), initial_registers={1: 9})
        assert program.interpret().state.read_reg(2) == 10

    def test_falls_off_end_without_halt(self):
        result = Program(assemble("nop")).interpret()
        assert not result.halted
        assert result.instructions_executed == 1

    def test_infinite_loop_raises(self):
        program = Program(assemble("loop: jmp loop"))
        with pytest.raises(ExecutionError, match="exceeded"):
            program.interpret(max_instructions=1000)

    def test_fetch_out_of_range_returns_none(self):
        program = Program(assemble("halt"))
        assert program.fetch(-1) is None
        assert program.fetch(1) is None
        assert program.fetch(0) is not None

    def test_disassemble_includes_pcs(self):
        text = Program(assemble("nop\nhalt")).disassemble()
        assert "0: nop" in text
        assert "1: halt" in text


class TestCodeBuilderPrograms:
    def test_builder_matches_assembler(self):
        b = CodeBuilder()
        b.li(1, 10)
        b.li(2, 0)
        b.li(3, 0)
        b.label("loop")
        b.add(3, 3, 2)
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        b.store(3, 0, disp=8)
        b.halt()
        built = b.build()
        source = """
            li r1, 10
            li r2, 0
            li r3, 0
        loop:
            add r3, r3, r2
            addi r2, r2, 1
            blt r2, r1, loop
            store r3, [r0 + 8]
            halt
        """
        assert built.instructions == assemble(source)

    def test_set_array_list_layout(self):
        b = CodeBuilder()
        b.set_array(0x100, [5, 6, 7])
        b.halt()
        program = b.build()
        state = program.initial_state()
        assert [state.read_mem(0x100 + 8 * i) for i in range(3)] == [5, 6, 7]

    def test_set_array_mapping_layout(self):
        b = CodeBuilder()
        b.set_array(0x100, {0: 5, 4: 9})
        b.halt()
        state = b.build().initial_state()
        assert state.read_mem(0x100) == 5
        assert state.read_mem(0x100 + 32) == 9

    def test_undefined_label_raises_at_build(self):
        from repro.common.errors import AssemblyError

        b = CodeBuilder()
        b.jmp("nowhere")
        with pytest.raises(AssemblyError, match="undefined label"):
            b.build()

    def test_here_tracks_position(self):
        b = CodeBuilder()
        assert b.here == 0
        b.nop(3)
        assert b.here == 3
