"""Unit tests for the micro-ISA instruction definitions."""

import pytest

from repro.common.errors import AssemblyError, ExecutionError
from repro.isa.instructions import (
    KIND_ALU,
    KIND_CBRANCH,
    KIND_HALT,
    KIND_JMP,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
    WORD_MASK,
    Instruction,
    Opcode,
    branch_taken,
    evaluate_alu,
)


class TestInstructionConstruction:
    def test_register_bounds_checked(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.ADD, rd=32, rs1=1, rs2=2)
        with pytest.raises(AssemblyError):
            Instruction(Opcode.ADD, rd=1, rs1=-1, rs2=2)

    def test_kind_precomputed(self):
        assert Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).kind == KIND_ALU
        assert Instruction(Opcode.LI, rd=1, imm=5).kind == KIND_ALU
        assert Instruction(Opcode.LOAD, rd=1, rs1=2).kind == KIND_LOAD
        assert Instruction(Opcode.STORE, rs2=1, rs1=2).kind == KIND_STORE
        assert Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=0).kind == KIND_CBRANCH
        assert Instruction(Opcode.JMP, imm=3).kind == KIND_JMP
        assert Instruction(Opcode.NOP).kind == KIND_NOP
        assert Instruction(Opcode.HALT).kind == KIND_HALT

    def test_classification_properties(self):
        load = Instruction(Opcode.LOAD, rd=1, rs1=2)
        assert load.is_load and not load.is_store and not load.is_branch
        store = Instruction(Opcode.STORE, rs2=1, rs1=2)
        assert store.is_store and not store.writes_register
        beq = Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=7)
        assert beq.is_branch and beq.is_conditional_branch
        jmp = Instruction(Opcode.JMP, imm=7)
        assert jmp.is_branch and not jmp.is_conditional_branch

    def test_writes_register_excludes_r0(self):
        assert not Instruction(Opcode.LI, rd=0, imm=5).writes_register
        assert Instruction(Opcode.LI, rd=1, imm=5).writes_register

    def test_source_registers_exclude_r0(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=0, rs2=2)
        assert inst.source_registers() == (2,)

    def test_mul_flag(self):
        assert Instruction(Opcode.MUL, rd=1, rs1=2, rs2=3).is_mul
        assert Instruction(Opcode.MULI, rd=1, rs1=2, imm=3).is_mul
        assert not Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).is_mul


class TestDisassembly:
    @pytest.mark.parametrize(
        "inst,text",
        [
            (Instruction(Opcode.LI, rd=1, imm=42), "li r1, 42"),
            (Instruction(Opcode.MOV, rd=1, rs1=2), "mov r1, r2"),
            (Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3), "add r1, r2, r3"),
            (Instruction(Opcode.ADDI, rd=1, rs1=2, imm=-4), "addi r1, r2, -4"),
            (Instruction(Opcode.LOAD, rd=1, rs1=2, imm=8), "load r1, [r2 + 8]"),
            (Instruction(Opcode.STORE, rs2=1, rs1=2, imm=8), "store r1, [r2 + 8]"),
            (Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=9), "beq r1, r2, 9"),
            (Instruction(Opcode.JMP, imm=3), "jmp 3"),
            (Instruction(Opcode.NOP), "nop"),
            (Instruction(Opcode.HALT), "halt"),
        ],
    )
    def test_round_trippable_text(self, inst, text):
        assert inst.disassemble() == text


class TestALUEvaluation:
    def test_add_wraps_64_bits(self):
        assert evaluate_alu(Opcode.ADD, WORD_MASK, 1) == 0

    def test_sub_wraps(self):
        assert evaluate_alu(Opcode.SUB, 0, 1) == WORD_MASK

    def test_mul_masks(self):
        assert evaluate_alu(Opcode.MUL, 1 << 63, 2) == 0

    def test_logic_ops(self):
        assert evaluate_alu(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert evaluate_alu(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert evaluate_alu(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts_mask_amount(self):
        assert evaluate_alu(Opcode.SHL, 1, 64) == 1  # shift by 64 & 63 == 0
        assert evaluate_alu(Opcode.SHR, 8, 3) == 1

    def test_li_returns_immediate(self):
        assert evaluate_alu(Opcode.LI, 0, 17) == 17

    def test_mov_passes_first_operand(self):
        assert evaluate_alu(Opcode.MOV, 23, 99) == 23

    def test_non_alu_raises(self):
        with pytest.raises(ExecutionError):
            evaluate_alu(Opcode.LOAD, 1, 2)


class TestBranchPredicates:
    def test_equality(self):
        assert branch_taken(Opcode.BEQ, 5, 5)
        assert not branch_taken(Opcode.BEQ, 5, 6)
        assert branch_taken(Opcode.BNE, 5, 6)

    def test_signed_comparison(self):
        minus_one = WORD_MASK  # two's complement -1
        assert branch_taken(Opcode.BLT, minus_one, 0)
        assert branch_taken(Opcode.BGE, 0, minus_one)
        assert not branch_taken(Opcode.BLT, 0, minus_one)

    def test_jmp_always_taken(self):
        assert branch_taken(Opcode.JMP, 0, 0)

    def test_non_branch_raises(self):
        with pytest.raises(ExecutionError):
            branch_taken(Opcode.ADD, 1, 2)
